(* Benchmark harness.

   Two layers:
   1. Bechamel micro-benchmarks — one [Test.make] per primitive cost
      centre (hashing, signing, verification, end-to-end checksummed
      cell update).
   2. The figure/table harness — regenerates every table and figure of
      the paper's Section 5 as CSV series (see DESIGN.md's
      per-experiment index).

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- fig7      # one experiment
     TEP_SCALE=full dune exec bench/main.exe   # paper-size workloads *)

open Tep_store
open Tep_core
open Tep_workload

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let cfg = Experiments.config_of_env () in
  let env = Scenario.make_env ~seed:"bench-micro" () in
  let p =
    Participant.create ~bits:cfg.Experiments.rsa_bits ~ca:env.Scenario.ca
      ~name:"bench" env.Scenario.drbg
  in
  Participant.Directory.register env.Scenario.directory p;
  let payload = String.make 256 'x' in
  let signature = Participant.sign p payload in
  let pk = Participant.public_key p in
  let db =
    Synth.build_database ~seed:"bench-micro-db"
      [ { Synth.name = "t1"; attrs = 8; rows = 400 } ]
  in
  let eng = Engine.create ~directory:env.Scenario.directory db in
  let drbg = Tep_crypto.Drbg.create ~seed:"bench-drbg" in
  let counter = ref 0 in
  [
    Test.make ~name:"sha1-256B"
      (Staged.stage (fun () -> ignore (Tep_crypto.Sha1.digest payload)));
    Test.make ~name:"sha256-256B"
      (Staged.stage (fun () -> ignore (Tep_crypto.Sha256.digest payload)));
    Test.make ~name:"md5-256B"
      (Staged.stage (fun () -> ignore (Tep_crypto.Md5.digest payload)));
    Test.make ~name:"hmac-sha256"
      (Staged.stage (fun () ->
           ignore
             (Tep_crypto.Hmac.mac ~algo:Tep_crypto.Digest_algo.SHA256
                ~key:"key" payload)));
    Test.make ~name:"rsa-sign"
      (Staged.stage (fun () -> ignore (Participant.sign p payload)));
    Test.make ~name:"rsa-verify"
      (Staged.stage (fun () ->
           ignore
             (Tep_crypto.Rsa.verify ~algo:Tep_crypto.Digest_algo.SHA256 pk
                ~msg:payload ~signature)));
    Test.make ~name:"drbg-32B"
      (Staged.stage (fun () -> ignore (Tep_crypto.Drbg.generate drbg 32)));
    Test.make ~name:"engine-update-cell"
      (Staged.stage (fun () ->
           incr counter;
           ignore
             (Engine.update_cell eng p ~table:"t1" ~row:(!counter mod 400)
                ~col:(!counter mod 8)
                (Value.Int !counter))));
  ]

let run_micro () =
  let open Bechamel in
  print_endline "## micro — Bechamel micro-benchmarks (ns per run)";
  let instance = Toolkit.Instance.monotonic_clock in
  let bench_cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:None ()
  in
  let suite = Test.make_grouped ~name:"tep" (micro_tests ()) in
  let raw = Benchmark.all bench_cfg [ instance ] suite in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  Printf.printf "%-32s %16s\n" "benchmark" "ns/op";
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some (e :: _) -> Printf.printf "%-32s %16.1f\n" name e
      | _ -> Printf.printf "%-32s %16s\n" name "n/a")
    (List.sort compare rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure/table harness                                                *)
(* ------------------------------------------------------------------ *)

let cfg = lazy (Experiments.config_of_env ())

let header title = Printf.printf "## %s\n" title

let run_table1 () =
  header "table1 — Table 1(b): synthetic database node counts";
  Printf.printf "tables,expected_nodes,actual_nodes,match\n";
  List.iter
    (fun r ->
      Printf.printf "\"%s\",%d,%d,%b\n" r.Experiments.tables
        r.Experiments.expected_nodes r.Experiments.actual_nodes
        (r.Experiments.expected_nodes = r.Experiments.actual_nodes))
    (Experiments.table1 (Lazy.force cfg));
  print_newline ()

let run_fig6 () =
  header "fig6 — average hashing time vs database size (expect ~linear)";
  Printf.printf "nodes,seconds,us_per_node\n";
  List.iter
    (fun p ->
      Printf.printf "%d,%.4f,%.3f\n" p.Experiments.f6_nodes
        p.Experiments.f6_seconds
        (p.Experiments.f6_seconds *. 1e6 /. float_of_int p.Experiments.f6_nodes))
    (Experiments.fig6 (Lazy.force cfg));
  print_newline ()

let run_fig7 () =
  header
    "fig7 — output-tree hashing, Basic vs Economical (expect Basic ~flat, \
     Economical growing with updates)";
  Printf.printf
    "updated_cells,basic_s,economical_s,basic_nodes,economical_nodes\n";
  List.iter
    (fun p ->
      Printf.printf "%d,%.4f,%.4f,%d,%d\n" p.Experiments.f7_updates
        p.Experiments.f7_basic_s p.Experiments.f7_economical_s
        p.Experiments.f7_basic_nodes p.Experiments.f7_economical_nodes)
    (Experiments.fig7 (Lazy.force cfg));
  print_newline ()

let pp_metrics_row label (m : Engine.metrics) =
  Printf.printf "\"%s\",%.4f,%.4f,%.4f,%.4f,%d,%d\n" label m.Engine.hash_s
    m.Engine.sign_s m.Engine.store_s
    (m.Engine.hash_s +. m.Engine.sign_s +. m.Engine.store_s)
    m.Engine.records_emitted m.Engine.checksum_bytes

let run_fig8 () =
  header
    "fig8 — time overhead by operation type (expect deletes < inserts ~ \
     updates)";
  Printf.printf "operation,hash_s,sign_s,store_s,total_s,records,bytes\n";
  List.iter
    (fun r -> pp_metrics_row r.Experiments.b_label r.Experiments.b_metrics)
    (Experiments.fig8_9 (Lazy.force cfg));
  print_newline ()

let run_fig9 () =
  header
    "fig9 — space overhead by operation type (expect inserts/updates >> \
     deletes)";
  Printf.printf "operation,records,checksum_bytes\n";
  List.iter
    (fun r ->
      Printf.printf "\"%s\",%d,%d\n" r.Experiments.b_label
        r.Experiments.b_metrics.Engine.records_emitted
        r.Experiments.b_metrics.Engine.checksum_bytes)
    (Experiments.fig8_9 (Lazy.force cfg));
  print_newline ()

let run_fig10 () =
  header
    "fig10 — time overhead vs %deletes in mixed operations (expect \
     decreasing)";
  Printf.printf
    "deletes_pct,inserts_pct,updates_pct,hash_s,sign_s,store_s,total_s,records\n";
  List.iter
    (fun r ->
      let m = r.Experiments.c_metrics in
      Printf.printf "%.1f,%.1f,%.1f,%.4f,%.4f,%.4f,%.4f,%d\n"
        r.Experiments.c_deletes_pct r.Experiments.c_inserts_pct
        r.Experiments.c_updates_pct m.Engine.hash_s m.Engine.sign_s
        m.Engine.store_s
        (m.Engine.hash_s +. m.Engine.sign_s +. m.Engine.store_s)
        m.Engine.records_emitted)
    (Experiments.fig10_11 (Lazy.force cfg));
  print_newline ()

let run_fig11 () =
  header "fig11 — space overhead vs %deletes (expect decreasing)";
  Printf.printf "deletes_pct,records,checksum_bytes\n";
  List.iter
    (fun r ->
      Printf.printf "%.1f,%d,%d\n" r.Experiments.c_deletes_pct
        r.Experiments.c_metrics.Engine.records_emitted
        r.Experiments.c_metrics.Engine.checksum_bytes)
    (Experiments.fig10_11 (Lazy.force cfg));
  print_newline ()

let run_bigdb () =
  header
    "bigdb — streaming hash of a large 2-column table (paper: 18.9M rows, \
     0.02156 ms/node)";
  let r = Experiments.bigdb (Lazy.force cfg) in
  Printf.printf "rows,nodes,seconds,ms_per_node\n";
  Printf.printf "%d,%d,%.2f,%.5f\n\n" r.Experiments.big_rows
    r.Experiments.big_nodes r.Experiments.big_seconds
    r.Experiments.big_ms_per_node

let run_ablation_chaining () =
  header
    "ablation-chaining — §3.2 local (per-object) vs global checksum chains";
  let r = Experiments.ablation_chaining (Lazy.force cfg) in
  Printf.printf "metric,local,global\n";
  Printf.printf "critical_path_dependent_signatures,%d,%d\n"
    r.Experiments.local_critical_path r.Experiments.global_critical_path;
  Printf.printf "wall_s_for_%d_ops_on_%d_cores,%.3f,%.3f\n" r.Experiments.ch_ops
    r.Experiments.ch_cores r.Experiments.local_wall_s
    r.Experiments.global_wall_s;
  Printf.printf "verify_one_object_s,%.4f,%.4f\n" r.Experiments.local_verify_s
    r.Experiments.global_verify_s;
  Printf.printf "objects_failing_after_1_corruption_of_%d,%d,%d\n\n"
    r.Experiments.ch_objects r.Experiments.local_failed_after_corruption
    r.Experiments.global_failed_after_corruption

let run_ablation_baseline () =
  header
    "ablation-baseline — plain vs Hasan-style linear vs this paper's engine";
  Printf.printf "scheme,ops,wall_s,space_bytes,fine_grained\n";
  List.iter
    (fun r ->
      Printf.printf "\"%s\",%d,%.3f,%d,%b\n" r.Experiments.bl_scheme
        r.Experiments.bl_ops r.Experiments.bl_wall_s
        r.Experiments.bl_space_bytes r.Experiments.bl_fine_grained)
    (Experiments.ablation_baseline (Lazy.force cfg));
  print_newline ()

let run_ablation_signing () =
  header
    "ablation-signing — RSA checksums (non-repudiation, the paper) vs \
     keyed HMAC tags (single trust domain)";
  Printf.printf "scheme,ops,sign_wall_s,verify_wall_s,checksum_bytes,non_repudiation\n";
  List.iter
    (fun r ->
      Printf.printf "\"%s\",%d,%.4f,%.4f,%d,%b\n" r.Experiments.sg_scheme
        r.Experiments.sg_ops r.Experiments.sg_sign_wall_s
        r.Experiments.sg_verify_wall_s r.Experiments.sg_checksum_bytes
        r.Experiments.sg_non_repudiation)
    (Experiments.ablation_signing (Lazy.force cfg));
  print_newline ()

let run_ablation_audit () =
  header
    "ablation-audit — full re-verification vs checkpointed incremental \
     audit (extension; expect full cost growing, incremental ~flat)";
  Printf.printf "round,total_records,full_s,full_records,incr_s,incr_records\n";
  List.iter
    (fun r ->
      Printf.printf "%d,%d,%.4f,%d,%.4f,%d\n" r.Experiments.au_round
        r.Experiments.au_total_records r.Experiments.au_full_s
        r.Experiments.au_full_records r.Experiments.au_incr_s
        r.Experiments.au_incr_records)
    (Experiments.ablation_audit (Lazy.force cfg));
  print_newline ()

let all =
  [
    ("table1", run_table1);
    ("fig6", run_fig6);
    ("fig7", run_fig7);
    ("fig8", run_fig8);
    ("fig9", run_fig9);
    ("fig10", run_fig10);
    ("fig11", run_fig11);
    ("bigdb", run_bigdb);
    ("ablation-chaining", run_ablation_chaining);
    ("ablation-baseline", run_ablation_baseline);
    ("ablation-signing", run_ablation_signing);
    ("ablation-audit", run_ablation_audit);
    ("micro", run_micro);
  ]

let () =
  let cfgv = Lazy.force cfg in
  Printf.printf
    "# tamper-evident provenance benchmarks (scale=%.2f, rsa=%d bits, runs=%d)\n"
    cfgv.Experiments.scale cfgv.Experiments.rsa_bits cfgv.Experiments.runs;
  Printf.printf "# set TEP_SCALE=full for paper-size workloads\n\n";
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst all
  in
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s (known: %s)\n" name
            (String.concat ", " (List.map fst all));
          exit 1)
    requested
