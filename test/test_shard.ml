(* Sharded-forest tests: routing determinism, the Merkle
   root-of-roots, the cross-shard two-phase commit protocol (including
   crash-point enumeration over every interleaving of shard flushes),
   server-side shard routing, per-shard root-cache invalidation, and
   the adaptive pool work-size gate.

   Everything is deterministic: participants come from fixed DRBG
   seeds, fault ordinals are explicit, and the engine emits no
   wall-clock state into records — so "sharded execution equals a
   serial re-execution of the same op stream" can be asserted as
   byte-identical root-of-roots. *)
open Tep_store
open Tep_core
module Fault = Tep_fault.Fault
module Merkle = Tep_tree.Merkle
module Pool = Tep_parallel.Pool
module Message = Tep_wire.Message
module Server = Tep_server.Server
module Client = Tep_client.Client

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let drbg = Tep_crypto.Drbg.create ~seed:"shard-harness"
let ca = Tep_crypto.Pki.create_ca ~bits:512 ~name:"CA" drbg

let directory =
  Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca)

let alice = Participant.create ~bits:512 ~ca ~name:"alice" drbg
let () = Participant.Directory.register directory alice

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_workdir f =
  let dir = Filename.temp_file "tep_shard" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Fault.reset ();
      try rm_rf dir with Sys_error _ -> ())
    (fun () -> f dir)

(* The first table name of the form tN that the stable hash routes to
   shard [k] — lets the tests address a specific shard without
   hard-coding hash values. *)
let table_for_shard ~shards k =
  let rec go i =
    let name = Printf.sprintf "t%d" i in
    if Shards.shard_of_table ~shards name = k then name else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

let test_routing_stable () =
  (* same inputs, same answers, forever: the shard map is durable *)
  List.iter
    (fun shards ->
      List.iter
        (fun name ->
          let a = Shards.shard_of_table ~shards name in
          let b = Shards.shard_of_table ~shards name in
          Alcotest.(check int) (Printf.sprintf "%s/%d stable" name shards) a b;
          Alcotest.(check bool)
            (Printf.sprintf "%s/%d in range" name shards)
            true
            (a >= 0 && a < shards))
        [ "stock"; "orders"; "t0"; "t1"; ""; "a-very-long-table-name" ])
    [ 1; 2; 4; 8; 64 ];
  (* 1 shard routes everything to 0 *)
  Alcotest.(check int) "1 shard" 0 (Shards.shard_of_table ~shards:1 "anything")

let test_routing_spreads () =
  (* 100 synthetic names over 4 shards: every shard owns at least one
     (the hash is not degenerate) *)
  let seen = Array.make 4 0 in
  for i = 0 to 99 do
    let k = Shards.shard_of_table ~shards:4 (Printf.sprintf "table_%d" i) in
    seen.(k) <- seen.(k) + 1
  done;
  Array.iteri
    (fun k n ->
      Alcotest.(check bool) (Printf.sprintf "shard %d non-empty" k) true (n > 0))
    seen

let test_routing_overrides () =
  let overrides = [ ("hot", 3); ("bogus", 99) ] in
  Alcotest.(check int) "pinned" 3
    (Shards.shard_of_table ~shards:4 ~overrides "hot");
  (* out-of-range pin falls back to the hash *)
  Alcotest.(check int) "bad pin ignored"
    (Shards.shard_of_table ~shards:4 "bogus")
    (Shards.shard_of_table ~shards:4 ~overrides "bogus")

(* ------------------------------------------------------------------ *)
(* Root-of-roots                                                       *)
(* ------------------------------------------------------------------ *)

let algo = Tep_crypto.Digest_algo.SHA1

let test_root_of_roots () =
  let r1 = Merkle.root_of_roots algo [ "aaaa"; "bbbb" ] in
  let r2 = Merkle.root_of_roots algo [ "aaaa"; "bbbb" ] in
  Alcotest.(check string) "deterministic" r1 r2;
  Alcotest.(check bool) "order matters" true
    (r1 <> Merkle.root_of_roots algo [ "bbbb"; "aaaa" ]);
  Alcotest.(check bool) "length-prefixed (no concat ambiguity)" true
    (Merkle.root_of_roots algo [ "ab"; "c" ]
    <> Merkle.root_of_roots algo [ "a"; "bc" ]);
  Alcotest.(check bool) "domain-separated from the raw hash" true
    (Merkle.root_of_roots algo [ "aaaa" ] <> "aaaa");
  Alcotest.(check bool) "arity matters" true
    (Merkle.root_of_roots algo [ "aaaa" ]
    <> Merkle.root_of_roots algo [ "aaaa"; "aaaa" ])

(* The same op stream, executed (a) sharded with interleaved arrivals
   and (b) sharded with grouped arrivals, yields byte-identical
   per-shard roots and root-of-roots — commit order within a shard is
   what matters, not global interleaving. *)
let make_engine table =
  let db = Database.create ~name:"sharddb" in
  let eng = Engine.create ~directory db in
  ok (Engine.create_table eng alice ~name:table (Schema.all_int [ "a"; "b" ]));
  eng

let test_sharded_vs_serial_roots () =
  let t0 = table_for_shard ~shards:2 0 and t1 = table_for_shard ~shards:2 1 in
  let run interleaved =
    let e0 = make_engine t0 and e1 = make_engine t1 in
    let ops =
      if interleaved then [ (e0, t0, 1); (e1, t1, 2); (e0, t0, 3); (e1, t1, 4) ]
      else [ (e0, t0, 1); (e0, t0, 3); (e1, t1, 2); (e1, t1, 4) ]
    in
    List.iter
      (fun (e, t, v) ->
        ignore
          (ok (Engine.insert_row e alice ~table:t [| Value.Int v; Value.Int v |])))
      ops;
    Merkle.root_of_roots (Engine.algo e0)
      [ Engine.root_hash e0; Engine.root_hash e1 ]
  in
  Alcotest.(check string) "interleaving-independent root-of-roots"
    (run false) (run true)

(* ------------------------------------------------------------------ *)
(* Cross-shard 2PC: protocol behaviour                                 *)
(* ------------------------------------------------------------------ *)

(* Two shard directories with WALs + one baseline committed insert
   each, checkpointed so recovery always has a generation to start
   from.  Returns live engines + the coordinator WAL. *)
let shard_dirs dir = [| Filename.concat dir "shard-0"; Filename.concat dir "shard-1" |]
let coord_path dir = Filename.concat dir "coord.wal"

let build_shards dir =
  let t0 = table_for_shard ~shards:2 0 and t1 = table_for_shard ~shards:2 1 in
  let engines =
    Array.mapi
      (fun k sdir ->
        Unix.mkdir sdir 0o755;
        let wal = Wal.open_file (Filename.concat sdir "wal.log") in
        let db = Database.create ~name:"sharddb" in
        let eng = Engine.create ~wal ~directory db in
        let table = if k = 0 then t0 else t1 in
        ok (Engine.create_table eng alice ~name:table (Schema.all_int [ "a"; "b" ]));
        ignore
          (ok (Engine.insert_row eng alice ~table [| Value.Int 1; Value.Int 1 |]));
        ignore (ok (Recovery.checkpoint ~dir:sdir ~wal eng));
        (eng, wal, table))
      (shard_dirs dir)
  in
  let coord = Wal.open_file (coord_path dir) in
  (engines, coord)

let cross_parts engines v =
  Array.to_list
    (Array.mapi
       (fun k (eng, _, table) ->
         {
           Shards.p_shard = k;
           p_engine = eng;
           p_by = alice;
           p_body =
             (fun () ->
               match
                 Engine.insert_row eng alice ~table
                   [| Value.Int v; Value.Int (v * v) |]
               with
               | Ok _ -> Ok ()
               | Error e -> Error e);
         })
       engines)

let rows_of eng table =
  Table.row_count (Database.get_table_exn (Engine.backend eng) table)

let test_2pc_commit () =
  with_workdir (fun dir ->
      let engines, coord = build_shards dir in
      let r =
        ok (Shards.commit_cross ~coord ~txid:"tx-1" (cross_parts engines 7))
      in
      let committed, warnings = r in
      Alcotest.(check int) "both shards committed" 2 (List.length committed);
      Alcotest.(check (list string)) "no phase-2 warnings" [] warnings;
      Array.iter
        (fun (eng, _, table) ->
          Alcotest.(check int) "row landed" 2 (rows_of eng table))
        engines;
      Alcotest.(check (list string)) "decision durable" [ "tx-1" ]
        (Shards.decided_txids (coord_path dir));
      (* live engines still verify *)
      Array.iter
        (fun (eng, _, _) ->
          Alcotest.(check bool) "shard verifies" true
            (Verifier.ok (ok (Engine.verify_object eng (Engine.root_oid eng)))))
        engines)

let test_2pc_partial_reject () =
  with_workdir (fun dir ->
      let engines, coord = build_shards dir in
      (* shard 1's body rejects before mutating: it must drop out with
         nothing journaled while shard 0 commits *)
      let parts =
        match cross_parts engines 9 with
        | [ p0; p1 ] ->
            [ p0; { p1 with Shards.p_body = (fun () -> Error "nope") } ]
        | _ -> assert false
      in
      let committed, _ = ok (Shards.commit_cross ~coord ~txid:"tx-2" parts) in
      Alcotest.(check (list int)) "only shard 0 committed" [ 0 ]
        (List.map fst committed);
      let e0, _, t0 = engines.(0) and e1, _, t1 = engines.(1) in
      Alcotest.(check int) "shard 0 grew" 2 (rows_of e0 t0);
      Alcotest.(check int) "shard 1 untouched" 1 (rows_of e1 t1);
      (* an all-reject transaction writes no decision at all *)
      let parts_all_fail =
        List.map
          (fun p -> { p with Shards.p_body = (fun () -> Error "nope") })
          (cross_parts engines 10)
      in
      let committed2, _ =
        ok (Shards.commit_cross ~coord ~txid:"tx-3" parts_all_fail)
      in
      Alcotest.(check int) "nothing committed" 0 (List.length committed2);
      Alcotest.(check (list string)) "tx-3 never decided" [ "tx-2" ]
        (Shards.decided_txids (coord_path dir)))

(* ------------------------------------------------------------------ *)
(* Cross-shard 2PC: crash-point enumeration                            *)
(* ------------------------------------------------------------------ *)

(* Crash the process at every failpoint ordinal covering: inside shard
   0's prepare, inside shard 1's prepare (i.e. between the two shard
   WAL flushes), before the coordinator Decide, and during each
   phase-2 marker.  After each crash, recover both shards with the
   coordinator's decision set and require the shards to AGREE — both
   have the transaction or neither — and the recovered root-of-roots
   to equal the pre- or post-transaction serial execution. *)
let recover_shard dir k =
  let sdir = (shard_dirs dir).(k) in
  let is_decided = Shards.is_decided_from (coord_path dir) in
  let eng, wal, report = ok (Recovery.recover ~is_decided ~dir:sdir ~directory ()) in
  Alcotest.(check bool)
    (Printf.sprintf "shard %d hash cross-check" k)
    true report.Recovery.hash_verified;
  (eng, wal)

let test_2pc_crash_enumeration () =
  (* reference run: the committed outcome every crash must converge to
     (or stay at the baseline) *)
  let expected_pre, expected_post =
    with_workdir (fun dir ->
        let engines, coord = build_shards dir in
        let ror () =
          let e0, _, _ = engines.(0) and e1, _, _ = engines.(1) in
          Merkle.root_of_roots (Engine.algo e0)
            [ Engine.root_hash e0; Engine.root_hash e1 ]
        in
        let pre = ror () in
        ignore (ok (Shards.commit_cross ~coord ~txid:"tx-ref" (cross_parts engines 7)));
        (pre, ror ()))
  in
  Alcotest.(check bool) "reference run changed the root" true
    (expected_pre <> expected_post);
  let scenarios =
    List.concat_map
      (fun site -> List.map (fun after -> (site, after)) [ 1; 2; 3; 4; 5 ])
      [ "wal.append.frame"; "wal.flush" ]
    @ [ (Shards.site_decide, 1); (Shards.site_phase2, 1); (Shards.site_phase2, 2) ]
  in
  List.iter
    (fun (site, after) ->
      let name = Printf.sprintf "2pc-crash:%s:#%d" site after in
      with_workdir (fun dir ->
          let engines, coord = build_shards dir in
          Fault.seed name;
          Fault.arm ~after site Fault.Crash_point;
          let crashed =
            match Shards.commit_cross ~coord ~txid:"tx-ref" (cross_parts engines 7) with
            | Ok _ | Error _ -> false
            | exception Fault.Crash _ -> true
          in
          Fault.reset ();
          (* the process is dead; recover both shards from disk *)
          Array.iter (fun (_, wal, _) -> Wal.close wal) engines;
          Wal.close coord;
          let e0, w0 = recover_shard dir 0 in
          let e1, w1 = recover_shard dir 1 in
          let _, _, t0 = engines.(0) and _, _, t1 = engines.(1) in
          let n0 = rows_of e0 t0 and n1 = rows_of e1 t1 in
          Alcotest.(check bool)
            (name ^ ": shards agree")
            true (n0 = n1);
          let ror =
            Merkle.root_of_roots (Engine.algo e0)
              [ Engine.root_hash e0; Engine.root_hash e1 ]
          in
          if ror <> expected_pre && ror <> expected_post then
            Alcotest.failf "%s: recovered root-of-roots matches neither the \
                            pre- nor post-transaction serial execution"
              name;
          (* decided implies committed, undecided implies rolled back *)
          let decided = Shards.is_decided_from (coord_path dir) "tx-ref" in
          if decided then
            Alcotest.(check string) (name ^ ": decided => post") expected_post ror
          else Alcotest.(check string) (name ^ ": undecided => pre") expected_pre ror;
          ignore crashed;
          (* recovered shards accept new work *)
          ignore (ok (Engine.insert_row e0 alice ~table:t0 [| Value.Int 9; Value.Int 9 |]));
          ignore (ok (Engine.insert_row e1 alice ~table:t1 [| Value.Int 9; Value.Int 9 |]));
          Wal.close w0;
          Wal.close w1))
    scenarios

(* ------------------------------------------------------------------ *)
(* Server-level sharding                                               *)
(* ------------------------------------------------------------------ *)

let make_sharded_server () =
  let t0 = table_for_shard ~shards:2 0 and t1 = table_for_shard ~shards:2 1 in
  let e0 = make_engine t0 and e1 = make_engine t1 in
  let coord_file = Filename.temp_file "tep_shard_coord" ".wal" in
  let coord = Wal.open_file coord_file in
  let server =
    Server.create
      ~drbg:(Tep_crypto.Drbg.create ~seed:"server")
      ~participants:[ ("alice", alice) ]
      ~shards:[ (e1, None) ] ~coord e0
  in
  (server, e0, e1, t0, t1, coord_file)

let test_server_routes_shards () =
  let server, e0, e1, t0, t1, coord_file = make_sharded_server () in
  let c = Client.loopback ~drbg:(Tep_crypto.Drbg.create ~seed:"client") server in
  ok (Client.authenticate c alice);
  ignore (ok (Client.insert c ~table:t0 [| Value.Int 1; Value.Int 10 |]));
  ignore (ok (Client.insert c ~table:t1 [| Value.Int 2; Value.Int 20 |]));
  ignore (ok (Client.insert c ~table:t1 [| Value.Int 3; Value.Int 30 |]));
  (* each write landed on its own engine *)
  Alcotest.(check int) "shard 0 rows" 1 (rows_of e0 t0);
  Alcotest.(check int) "shard 1 rows" 2 (rows_of e1 t1);
  (* the published root is the root-of-roots, not either engine root *)
  let root = ok (Client.root_hash c) in
  Alcotest.(check string) "root-of-roots published"
    (Merkle.root_of_roots (Engine.algo e0)
       [ Engine.root_hash e0; Engine.root_hash e1 ])
    root;
  (* whole-database verify covers both shards *)
  let report, store_audit = ok (Client.verify c ()) in
  Alcotest.(check bool) "verify ok" true (Message.report_ok report);
  (match store_audit with
  | Some a -> Alcotest.(check bool) "store audit ok" true (Message.report_ok a)
  | None -> Alcotest.fail "whole-db verify must include a store audit");
  (* unknown table still rejected *)
  (match Client.insert c ~table:"missing" [| Value.Int 1 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "insert into unknown table must fail");
  Client.close c;
  Sys.remove coord_file

let test_server_shard_cache_invalidation () =
  let server, _, _, t0, t1, coord_file = make_sharded_server () in
  let c = Client.loopback ~drbg:(Tep_crypto.Drbg.create ~seed:"client") server in
  ok (Client.authenticate c alice);
  ignore (ok (Client.insert c ~table:t0 [| Value.Int 1; Value.Int 10 |]));
  ignore (ok (Client.insert c ~table:t1 [| Value.Int 2; Value.Int 20 |]));
  let stats () =
    List.map
      (fun s -> (s.Message.ss_root_recomputes, s.Message.ss_root_hits))
      (ok (Client.shard_stats c))
  in
  (* first root-hash computes both shards; second hits both caches *)
  ignore (ok (Client.root_hash c));
  let s1 = stats () in
  ignore (ok (Client.root_hash c));
  let s2 = stats () in
  List.iteri
    (fun k ((rc1, _), (rc2, h2)) ->
      Alcotest.(check int) (Printf.sprintf "shard %d cached" k) rc1 rc2;
      Alcotest.(check bool) (Printf.sprintf "shard %d hit" k) true (h2 > 0))
    (List.combine s1 s2);
  (* a write to shard 1 must invalidate ONLY shard 1's entry *)
  ignore (ok (Client.insert c ~table:t1 [| Value.Int 3; Value.Int 30 |]));
  ignore (ok (Client.root_hash c));
  let s3 = stats () in
  (match (s2, s3) with
  | [ (rc0_before, _); (rc1_before, _) ], [ (rc0_after, _); (rc1_after, _) ] ->
      Alcotest.(check int) "shard 0 cache survives" rc0_before rc0_after;
      Alcotest.(check int) "shard 1 recomputed" (rc1_before + 1) rc1_after
  | _ -> Alcotest.fail "expected 2 shard stats");
  Client.close c;
  Sys.remove coord_file

(* A multi-op batch spanning both shards goes through the 2PC
   coordinator path: both Submitted, the decision journaled. *)
let test_server_cross_shard_batch () =
  let server, e0, e1, t0, t1, coord_file = make_sharded_server () in
  let responses =
    Server.submit_ops server alice
      [|
        Message.Op_insert { table = t0; cells = [| Value.Int 1; Value.Int 1 |] };
        Message.Op_insert { table = t1; cells = [| Value.Int 2; Value.Int 2 |] };
      |]
  in
  Array.iter
    (function
      | Message.Submitted _ -> ()
      | r ->
          Alcotest.failf "cross-shard op not committed: %s"
            (match r with
            | Message.Error_resp { message; _ } -> message
            | _ -> "unexpected response"))
    responses;
  Alcotest.(check int) "shard 0 grew" 1 (rows_of e0 t0);
  Alcotest.(check int) "shard 1 grew" 1 (rows_of e1 t1);
  let decided = Shards.decided_txids coord_file in
  Alcotest.(check int) "one decision journaled" 1 (List.length decided);
  (* single-shard batches stay off the coordinator *)
  let responses2 =
    Server.submit_ops server alice
      [|
        Message.Op_insert { table = t0; cells = [| Value.Int 3; Value.Int 3 |] };
        Message.Op_insert { table = t0; cells = [| Value.Int 4; Value.Int 4 |] };
      |]
  in
  Array.iter
    (function
      | Message.Submitted _ -> ()
      | _ -> Alcotest.fail "single-shard op failed")
    responses2;
  Alcotest.(check int) "no new decision" 1
    (List.length (Shards.decided_txids coord_file));
  Sys.remove coord_file

(* ------------------------------------------------------------------ *)
(* Adaptive pool gate                                                  *)
(* ------------------------------------------------------------------ *)

let test_pool_serial_below_semantics () =
  let pool = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      List.iter
        (fun serial_below ->
          List.iter
            (fun n ->
              let input = Array.init n (fun i -> i) in
              let got =
                Pool.map_chunked ~serial_below pool (fun i -> (i * 3) + 1) input
              in
              Alcotest.(check (array int))
                (Printf.sprintf "n=%d gate=%d" n serial_below)
                (Array.map (fun i -> (i * 3) + 1) input)
                got)
            [ 0; 1; 3; 64 ])
        [ 0; 1; 4; 1000 ];
      (* under the gate the whole call runs on the calling domain *)
      let self = Domain.self () in
      let others = Stdlib.Atomic.make 0 in
      Pool.parallel_for ~serial_below:1000 pool ~lo:0 ~hi:99 (fun _ ->
          if Domain.self () <> self then Stdlib.Atomic.incr others);
      Alcotest.(check int) "gated run stays on the caller" 0 (Stdlib.Atomic.get others);
      (* above the gate a 4-domain pool really does fan out.  The
         caller helps drain the chunk queue, so each item must carry
         enough work for a worker domain to win at least one chunk;
         retry to shed scheduler flakiness. *)
      let seen_other = Stdlib.Atomic.make false in
      let spin () =
        let x = ref 0 in
        for _ = 1 to 100_000 do
          incr x
        done;
        ignore (Sys.opaque_identity !x)
      in
      let attempts = ref 0 in
      while (not (Stdlib.Atomic.get seen_other)) && !attempts < 10 do
        incr attempts;
        Pool.parallel_for ~serial_below:10 ~chunk:1 pool ~lo:0 ~hi:99 (fun _ ->
            spin ();
            if Domain.self () <> self then Stdlib.Atomic.set seen_other true)
      done;
      Alcotest.(check bool) "ungated run fans out" true
        (Stdlib.Atomic.get seen_other))

(* The 1-core regression assertion: on a 1-domain pool, the pooled
   call with the gate must not be slower than the plain serial loop
   beyond noise.  The generous factor keeps this meaningful (it fails
   if gating is broken and the pool round-trips through a queue) while
   staying robust on loaded CI machines. *)
let test_pool_1core_not_slower () =
  let n = 50_000 in
  let input = Array.init n (fun i -> i) in
  let work i = (i * 1103515245) + 12345 in
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    Unix.gettimeofday () -. t0
  in
  let serial () = time (fun () -> Array.map work input) in
  let pooled pool () =
    time (fun () -> Pool.map_chunked ~serial_below:max_int pool work input)
  in
  let pool = Pool.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      (* warm both paths, then take the best of 3 to shed scheduler noise *)
      ignore (serial ());
      ignore (pooled pool ());
      let best f = List.fold_left min infinity [ f (); f (); f () ] in
      let ts = best serial and tp = best (pooled pool) in
      Alcotest.(check bool)
        (Printf.sprintf "gated pooled (%.4fs) not slower than serial (%.4fs) \
                         beyond noise"
           tp ts)
        true
        (tp <= (ts *. 5.) +. 0.01))

let () =
  Alcotest.run "shard"
    [
      ( "routing",
        [
          Alcotest.test_case "stable" `Quick test_routing_stable;
          Alcotest.test_case "spreads" `Quick test_routing_spreads;
          Alcotest.test_case "overrides" `Quick test_routing_overrides;
        ] );
      ( "root-of-roots",
        [
          Alcotest.test_case "construction" `Quick test_root_of_roots;
          Alcotest.test_case "sharded = serial" `Quick
            test_sharded_vs_serial_roots;
        ] );
      ( "2pc",
        [
          Alcotest.test_case "commit" `Quick test_2pc_commit;
          Alcotest.test_case "partial reject" `Quick test_2pc_partial_reject;
          Alcotest.test_case "crash enumeration" `Quick
            test_2pc_crash_enumeration;
        ] );
      ( "server",
        [
          Alcotest.test_case "routes" `Quick test_server_routes_shards;
          Alcotest.test_case "cache invalidation" `Quick
            test_server_shard_cache_invalidation;
          Alcotest.test_case "cross-shard batch" `Quick
            test_server_cross_shard_batch;
        ] );
      ( "pool-gate",
        [
          Alcotest.test_case "serial_below semantics" `Quick
            test_pool_serial_below_semantics;
          Alcotest.test_case "1-core not slower" `Quick
            test_pool_1core_not_slower;
        ] );
    ]
