(* HMAC against RFC 2202 (MD5/SHA-1) and RFC 4231 (SHA-256) vectors. *)
open Tep_crypto

let check = Alcotest.(check string)

let test_rfc2202_sha1 () =
  check "case 1" "b617318655057264e28bc0b6fb378c8ef146be00"
    (Hmac.hex ~algo:Digest_algo.SHA1 ~key:(String.make 20 '\x0b') "Hi There");
  check "case 2" "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
    (Hmac.hex ~algo:Digest_algo.SHA1 ~key:"Jefe" "what do ya want for nothing?");
  check "case 3" "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
    (Hmac.hex ~algo:Digest_algo.SHA1 ~key:(String.make 20 '\xaa')
       (String.make 50 '\xdd'));
  (* case 6: key longer than block size *)
  check "case 6" "aa4ae5e15272d00e95705637ce8a3b55ed402112"
    (Hmac.hex ~algo:Digest_algo.SHA1 ~key:(String.make 80 '\xaa')
       "Test Using Larger Than Block-Size Key - Hash Key First")

let test_rfc2202_md5 () =
  check "case 1" "9294727a3638bb1c13f48ef8158bfc9d"
    (Hmac.hex ~algo:Digest_algo.MD5 ~key:(String.make 16 '\x0b') "Hi There");
  check "case 2" "750c783e6ab0b503eaa86e310a5db738"
    (Hmac.hex ~algo:Digest_algo.MD5 ~key:"Jefe" "what do ya want for nothing?")

let test_rfc4231_sha256 () =
  check "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.hex ~algo:Digest_algo.SHA256 ~key:(String.make 20 '\x0b') "Hi There");
  check "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.hex ~algo:Digest_algo.SHA256 ~key:"Jefe"
       "what do ya want for nothing?");
  check "case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.hex ~algo:Digest_algo.SHA256 ~key:(String.make 20 '\xaa')
       (String.make 50 '\xdd'))

let test_verify () =
  let key = "secret" and msg = "payload" in
  let tag = Hmac.mac ~algo:Digest_algo.SHA256 ~key msg in
  Alcotest.(check bool)
    "good" true
    (Hmac.verify ~algo:Digest_algo.SHA256 ~key ~msg ~tag);
  Alcotest.(check bool)
    "bad msg" false
    (Hmac.verify ~algo:Digest_algo.SHA256 ~key ~msg:"other" ~tag);
  Alcotest.(check bool)
    "bad key" false
    (Hmac.verify ~algo:Digest_algo.SHA256 ~key:"wrong" ~msg ~tag)

(* The precomputed key schedule (ipad/opad folded once per session)
   must be byte-identical to the one-shot path for every key shape:
   empty, short, block-sized, longer than a block. *)
let test_keyed_context () =
  let keys =
    [ ""; "Jefe"; String.make 20 '\x0b'; String.make 64 '\x55';
      String.make 80 '\xaa' ]
  in
  let msgs =
    [ ""; "Hi There"; "what do ya want for nothing?"; String.make 50 '\xdd' ]
  in
  List.iter
    (fun key ->
      let ctx = Hmac.context ~algo:Digest_algo.SHA256 ~key in
      List.iter
        (fun msg ->
          check "keyed context matches one-shot"
            (Hmac.mac ~algo:Digest_algo.SHA256 ~key msg)
            (Hmac.mac_with ctx msg))
        msgs)
    keys

let test_constant_time_equal () =
  Alcotest.(check bool) "equal" true (Hmac.equal_constant_time "abc" "abc");
  Alcotest.(check bool) "diff" false (Hmac.equal_constant_time "abc" "abd");
  Alcotest.(check bool) "len" false (Hmac.equal_constant_time "ab" "abc");
  Alcotest.(check bool) "empty" true (Hmac.equal_constant_time "" "")

let prop_context_equivalence =
  QCheck2.Test.make ~name:"precomputed context = one-shot mac" ~count:200
    QCheck2.Gen.(
      pair
        (string_size ~gen:char (int_range 0 100))
        (string_size ~gen:char (int_range 0 200)))
    (fun (key, msg) ->
      String.equal
        (Hmac.mac ~algo:Digest_algo.SHA256 ~key msg)
        (Hmac.mac_with (Hmac.context ~algo:Digest_algo.SHA256 ~key) msg))

let prop_key_sensitivity =
  QCheck2.Test.make ~name:"different keys, different tags" ~count:200
    QCheck2.Gen.(
      triple (string_size ~gen:char (int_range 0 40))
        (string_size ~gen:char (int_range 0 40))
        (string_size ~gen:char (int_range 0 60)))
    (fun (k1, k2, msg) ->
      QCheck2.assume (not (String.equal k1 k2));
      not
        (String.equal
           (Hmac.mac ~algo:Digest_algo.SHA256 ~key:k1 msg)
           (Hmac.mac ~algo:Digest_algo.SHA256 ~key:k2 msg)))

let () =
  Alcotest.run "hmac"
    [
      ( "vectors",
        [
          Alcotest.test_case "rfc2202 sha1" `Quick test_rfc2202_sha1;
          Alcotest.test_case "rfc2202 md5" `Quick test_rfc2202_md5;
          Alcotest.test_case "rfc4231 sha256" `Quick test_rfc4231_sha256;
        ] );
      ( "unit",
        [
          Alcotest.test_case "verify" `Quick test_verify;
          Alcotest.test_case "keyed context" `Quick test_keyed_context;
          Alcotest.test_case "constant-time equal" `Quick
            test_constant_time_equal;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_key_sensitivity;
          QCheck_alcotest.to_alcotest prop_context_equivalence;
        ] );
    ]
