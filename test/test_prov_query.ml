(* Provenance queries: history, blame, contribution, derivation. *)
open Tep_store
open Tep_tree
open Tep_core

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let fixture () =
  let drbg = Tep_crypto.Drbg.create ~seed:"test-pq" in
  let ca = Tep_crypto.Pki.create_ca ~bits:512 ~name:"CA" drbg in
  let dir = Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca) in
  let mk name =
    let p = Participant.create ~bits:512 ~ca ~name drbg in
    Participant.Directory.register dir p;
    p
  in
  let alice = mk "alice" and bob = mk "bob" in
  let db = Database.create ~name:"pq" in
  ignore (ok (Database.create_table db ~name:"t" (Schema.all_int [ "a" ])));
  let eng = Engine.create ~directory:dir db in
  let r0 = ok (Engine.insert_row eng alice ~table:"t" [| Value.Int 1 |]) in
  let r1 = ok (Engine.insert_row eng alice ~table:"t" [| Value.Int 2 |]) in
  ok (Engine.update_cell eng bob ~table:"t" ~row:r0 ~col:0 (Value.Int 10));
  ok (Engine.update_cell eng alice ~table:"t" ~row:r0 ~col:0 (Value.Int 20));
  let row0 = Option.get (Tree_view.row_oid (Engine.mapping eng) "t" r0) in
  let row1 = Option.get (Tree_view.row_oid (Engine.mapping eng) "t" r1) in
  let cell = Option.get (Tree_view.cell_oid (Engine.mapping eng) "t" r0 0) in
  let agg = ok (Engine.aggregate_objects eng bob ~value:(Value.Text "agg") [ row0; row1 ]) in
  let agg2 = ok (Engine.aggregate_objects eng alice ~value:(Value.Text "agg2") [ agg ]) in
  (eng, alice, bob, cell, row0, row1, agg, agg2)

let store eng = Engine.provstore eng

let test_history_and_values () =
  let eng, _, _, cell, _, _, _, _ = fixture () in
  let h = Prov_query.history (store eng) cell in
  Alcotest.(check int) "3 records" 3 (List.length h);
  let vh = Prov_query.value_history (store eng) cell in
  Alcotest.(check (list (triple int string (of_pp Value.pp))))
    "value timeline"
    [ (0, "alice", Value.Int 1); (1, "bob", Value.Int 10); (2, "alice", Value.Int 20) ]
    (List.map (fun (s, p, v) -> (s, p, v)) vh)

let test_writers () =
  let eng, _, _, cell, _, _, _, _ = fixture () in
  Alcotest.(check (option string)) "last writer" (Some "alice")
    (Prov_query.last_writer (store eng) cell);
  Alcotest.(check (list string)) "writers in order" [ "alice"; "bob" ]
    (Prov_query.writers (store eng) cell)

let test_contributors () =
  let eng, _, _, _, _, _, agg, _ = fixture () in
  let cs = Prov_query.contributors (store eng) agg in
  Alcotest.(check bool) "both participants" true
    (List.mem_assoc "alice" cs && List.mem_assoc "bob" cs);
  (* sorted by count descending *)
  match cs with
  | (_, c1) :: (_, c2) :: _ -> Alcotest.(check bool) "sorted" true (c1 >= c2)
  | _ -> Alcotest.fail "expected two contributors"

let test_derived_from () =
  let eng, _, _, _, row0, row1, agg, agg2 = fixture () in
  let d = Prov_query.derived_from (store eng) agg in
  Alcotest.(check bool) "rows included" true
    (List.exists (Oid.equal row0) d && List.exists (Oid.equal row1) d);
  let d2 = Prov_query.derived_from (store eng) agg2 in
  Alcotest.(check bool) "transitive through agg" true
    (List.exists (Oid.equal agg) d2 && List.exists (Oid.equal row0) d2)

let test_derivatives () =
  let eng, _, _, _, row0, _, agg, agg2 = fixture () in
  let d = Prov_query.derivatives (store eng) row0 in
  Alcotest.(check bool) "agg downstream" true (List.exists (Oid.equal agg) d);
  Alcotest.(check bool) "agg2 transitively downstream" true
    (List.exists (Oid.equal agg2) d);
  Alcotest.(check (list int)) "agg2 has no derivatives" []
    (List.map Oid.to_int (Prov_query.derivatives (store eng) agg2))

let test_touched_by () =
  let eng, _, _, cell, _, _, _, _ = fixture () in
  let bobs = Prov_query.touched_by (store eng) "bob" in
  Alcotest.(check bool) "bob touched the cell" true (List.exists (Oid.equal cell) bobs);
  Alcotest.(check (list int)) "nobody named carol" []
    (List.map Oid.to_int (Prov_query.touched_by (store eng) "carol"))

let test_state_hash_at () =
  let eng, _, _, cell, _, _, _, _ = fixture () in
  (match Prov_query.state_hash_at (store eng) cell 1 with
  | Some h ->
      let r2 = Option.get (Prov_query.record_at (store eng) cell 2) in
      Alcotest.(check (list string)) "v1 hash feeds v2 input"
        [ Tep_crypto.Digest_algo.to_hex h ]
        (List.map Tep_crypto.Digest_algo.to_hex r2.Record.input_hashes)
  | None -> Alcotest.fail "missing version");
  Alcotest.(check bool) "absent version" true
    (Prov_query.state_hash_at (store eng) cell 99 = None)

(* ---- shared-index traversal: deep chains must stay linear ---- *)

(* A 10k-deep aggregate chain built straight into a store — unsigned,
   Prov_query never checks signatures — so this runs in milliseconds
   unless a traversal regresses to per-node rescans of the store. *)
let deep_chain n =
  let store = Provstore.create () in
  let ck i = "c" ^ string_of_int i in
  let record seq kind input_oids prev output =
    {
      Record.seq_id = seq;
      participant = "p";
      kind;
      inherited = false;
      input_oids;
      input_hashes = List.map (fun _ -> "h") input_oids;
      output_oid = Oid.of_int output;
      output_hash = "h";
      output_value = None;
      prev_checksums = prev;
      checksum = ck seq;
    }
  in
  Provstore.append store (record 0 Record.Insert [] [] 0);
  for i = 1 to n do
    Provstore.append store
      (record i Record.Aggregate [ Oid.of_int (i - 1) ] [ ck (i - 1) ] i)
  done;
  store

let test_deep_chain_linear () =
  let n = 10_000 in
  let store = deep_chain n in
  let t0 = Unix.gettimeofday () in
  Alcotest.(check int) "all downstream" n
    (List.length (Prov_query.derivatives store (Oid.of_int 0)));
  Alcotest.(check int) "all upstream" n
    (List.length (Prov_query.derived_from store (Oid.of_int n)));
  let idx = Prov_index.of_store store in
  Alcotest.(check int) "depth = chain length" n
    (Prov_index.depth idx (Oid.of_int n));
  let elapsed = Unix.gettimeofday () -. t0 in
  if elapsed >= 5.0 then
    Alcotest.failf "deep-chain traversals took %.2fs (expected well under 5s)"
      elapsed

let () =
  Alcotest.run "prov_query"
    [
      ( "unit",
        [
          Alcotest.test_case "history & values" `Quick test_history_and_values;
          Alcotest.test_case "writers" `Quick test_writers;
          Alcotest.test_case "contributors" `Quick test_contributors;
          Alcotest.test_case "derived_from" `Quick test_derived_from;
          Alcotest.test_case "derivatives" `Quick test_derivatives;
          Alcotest.test_case "touched_by" `Quick test_touched_by;
          Alcotest.test_case "state_hash_at" `Quick test_state_hash_at;
        ] );
      ( "perf",
        [ Alcotest.test_case "10k deep chain" `Quick test_deep_chain_linear ] );
    ]
