(* The experiment harness itself: each figure generator runs at tiny
   scale and produces series with the paper's qualitative shape. *)
open Tep_core
open Tep_workload

let tiny =
  {
    Experiments.scale = 0.02;
    rsa_bits = 512;
    seed = "test-experiments";
    runs = 1;
  }

let total (m : Engine.metrics) =
  m.Engine.hash_s +. m.Engine.sign_s +. m.Engine.store_s

let test_table1 () =
  let rows = Experiments.table1 tiny in
  Alcotest.(check int) "four rows" 4 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check int) r.Experiments.tables r.Experiments.expected_nodes
        r.Experiments.actual_nodes)
    rows

let test_fig6_monotone () =
  let pts = Experiments.fig6 tiny in
  Alcotest.(check int) "four points" 4 (List.length pts);
  let rec mono = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "nodes increase" true
          (b.Experiments.f6_nodes > a.Experiments.f6_nodes);
        mono rest
    | _ -> ()
  in
  mono pts;
  List.iter
    (fun p -> Alcotest.(check bool) "positive time" true (p.Experiments.f6_seconds > 0.))
    pts

let test_fig7_shapes () =
  let pts = Experiments.fig7 tiny in
  Alcotest.(check bool) "several points" true (List.length pts >= 5);
  let first = List.hd pts and last = List.nth pts (List.length pts - 1) in
  (* Basic hashes the whole tree regardless of update count *)
  Alcotest.(check int) "basic constant nodes" first.Experiments.f7_basic_nodes
    last.Experiments.f7_basic_nodes;
  (* Economical work grows with updates *)
  Alcotest.(check bool) "economical grows" true
    (last.Experiments.f7_economical_nodes > first.Experiments.f7_economical_nodes);
  Alcotest.(check bool) "economical <= basic" true
    (last.Experiments.f7_economical_nodes <= last.Experiments.f7_basic_nodes);
  (* at 1 update, economical touches only the 4-node path *)
  Alcotest.(check int) "single update = path" 4
    first.Experiments.f7_economical_nodes

let test_fig8_9_ordering () =
  let rows = Experiments.fig8_9 tiny in
  Alcotest.(check int) "four workloads" 4 (List.length rows);
  match rows with
  | [ del; ins; upd_few; upd_many ] ->
      Alcotest.(check bool) "deletes cheapest (time)" true
        (total del.Experiments.b_metrics < total ins.Experiments.b_metrics);
      Alcotest.(check bool) "deletes cheapest (space)" true
        (del.Experiments.b_metrics.Engine.checksum_bytes
        < ins.Experiments.b_metrics.Engine.checksum_bytes);
      (* inserts ~ updates-in-same-rows: identical record counts *)
      Alcotest.(check int) "inserts = updates records"
        ins.Experiments.b_metrics.Engine.records_emitted
        upd_few.Experiments.b_metrics.Engine.records_emitted;
      Alcotest.(check bool) "wide updates cost more" true
        (upd_many.Experiments.b_metrics.Engine.records_emitted
        > upd_few.Experiments.b_metrics.Engine.records_emitted)
  | _ -> Alcotest.fail "unexpected shape"

let test_fig10_11_decreasing () =
  let rows = Experiments.fig10_11 tiny in
  Alcotest.(check int) "four mixes" 4 (List.length rows);
  let rec mono = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "deletes pct increases" true
          (b.Experiments.c_deletes_pct > a.Experiments.c_deletes_pct);
        Alcotest.(check bool) "records decrease" true
          (b.Experiments.c_metrics.Engine.records_emitted
          <= a.Experiments.c_metrics.Engine.records_emitted);
        mono rest
    | _ -> ()
  in
  mono rows

let test_bigdb () =
  let r = Experiments.bigdb tiny in
  Alcotest.(check bool) "nodes counted" true (r.Experiments.big_nodes > 0);
  Alcotest.(check int) "node arithmetic"
    (2 + (r.Experiments.big_rows * 3))
    r.Experiments.big_nodes;
  Alcotest.(check bool) "rate positive" true (r.Experiments.big_ms_per_node > 0.)

let test_ablation_chaining () =
  let r = Experiments.ablation_chaining tiny in
  Alcotest.(check bool) "local path shorter" true
    (r.Experiments.local_critical_path < r.Experiments.global_critical_path);
  Alcotest.(check int) "local corruption contained" 1
    r.Experiments.local_failed_after_corruption;
  Alcotest.(check int) "global corruption total" r.Experiments.ch_objects
    r.Experiments.global_failed_after_corruption;
  Alcotest.(check bool) "global verify costlier" true
    (r.Experiments.global_verify_s > r.Experiments.local_verify_s)

let test_ablation_baseline () =
  let rows = Experiments.ablation_baseline tiny in
  Alcotest.(check int) "three schemes" 3 (List.length rows);
  let fine = List.filter (fun r -> r.Experiments.bl_fine_grained) rows in
  Alcotest.(check int) "only tep is fine-grained" 1 (List.length fine);
  (* plain < linear < tep in space *)
  match rows with
  | [ plain; linear; tep ] ->
      Alcotest.(check bool) "plain smallest" true
        (plain.Experiments.bl_space_bytes < linear.Experiments.bl_space_bytes);
      Alcotest.(check bool) "tep largest" true
        (tep.Experiments.bl_space_bytes > linear.Experiments.bl_space_bytes)
  | _ -> Alcotest.fail "unexpected shape"

let test_ablation_signing () =
  let rows = Experiments.ablation_signing tiny in
  Alcotest.(check int) "two schemes" 2 (List.length rows);
  match rows with
  | [ rsa; hmac ] ->
      Alcotest.(check bool) "hmac much cheaper" true
        (hmac.Experiments.sg_sign_wall_s < rsa.Experiments.sg_sign_wall_s /. 5.);
      Alcotest.(check bool) "rsa provides non-repudiation" true
        rsa.Experiments.sg_non_repudiation;
      Alcotest.(check bool) "hmac does not" false
        hmac.Experiments.sg_non_repudiation
  | _ -> Alcotest.fail "unexpected shape"

let test_ablation_audit () =
  let rows = Experiments.ablation_audit tiny in
  Alcotest.(check int) "five rounds" 5 (List.length rows);
  let first = List.hd rows and last = List.nth rows 4 in
  Alcotest.(check bool) "full grows" true
    (last.Experiments.au_full_records > first.Experiments.au_full_records);
  Alcotest.(check bool) "incremental flat" true
    (last.Experiments.au_incr_records <= first.Experiments.au_incr_records + 2)

let test_config_env () =
  let c = Experiments.default_config in
  Alcotest.(check bool) "reduced default" true (c.Experiments.scale < 1.0);
  Alcotest.(check bool) "runs positive" true (c.Experiments.runs >= 1)

let () =
  Alcotest.run "experiments"
    [
      ( "harness",
        [
          Alcotest.test_case "table1" `Slow test_table1;
          Alcotest.test_case "fig6 monotone" `Quick test_fig6_monotone;
          Alcotest.test_case "fig7 shapes" `Quick test_fig7_shapes;
          Alcotest.test_case "fig8/9 ordering" `Quick test_fig8_9_ordering;
          Alcotest.test_case "fig10/11 decreasing" `Quick
            test_fig10_11_decreasing;
          Alcotest.test_case "bigdb" `Quick test_bigdb;
          Alcotest.test_case "ablation chaining" `Quick test_ablation_chaining;
          Alcotest.test_case "ablation baseline" `Quick
            test_ablation_baseline;
          Alcotest.test_case "ablation signing" `Quick test_ablation_signing;
          Alcotest.test_case "ablation audit" `Quick test_ablation_audit;
          Alcotest.test_case "config" `Quick test_config_env;
        ] );
    ]
