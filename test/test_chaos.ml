(* Network chaos soak gate.

   A real client talks to a real daemon over Unix-domain sockets
   through the {!Tep_fault.Chaos} proxy, which injects chunk splits,
   delays, single-bit corruption, and whole-connection drops — all
   drawn from DRBGs seeded by TEP_CHAOS_SEED (default "tep-chaos-0"),
   so a failing run replays from its seed.

   Every write travels idempotently (a fixed per-op request id) and is
   retried until it succeeds, through however many transparent
   reconnect-and-replay rounds and app-level re-issues the chaos
   forces.  The gate then asserts the exactly-once contract end to
   end:

   - the backend holds exactly one row per logical operation — no
     duplicate from any replay, no loss from any drop;
   - a full verify over a clean connection reports no tampering;
   - the WAL + checkpoint directory recovers into an engine whose
     root hash matches the live server's.

   Iterations are bounded (a soak, not a fuzzer): ~250 logical ops,
   with a floor on actually-injected faults so a too-quiet proxy fails
   the gate instead of vacuously passing it. *)
open Tep_store
open Tep_core
module Message = Tep_wire.Message
module Server = Tep_server.Server
module Client = Tep_client.Client
module Chaos = Tep_fault.Chaos

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let chaos_seed () =
  match Sys.getenv_opt "TEP_CHAOS_SEED" with
  | Some s when s <> "" -> s
  | _ -> "tep-chaos-0"

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_workdir f =
  let dir = Filename.temp_file "tep_chaos" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ())
    (fun () -> f dir)

let n_min = 250 (* logical ops at minimum *)
let n_cap = 600 (* hard bound: a soak, not a fuzzer *)
let fault_floor = 200 (* injected faults required before stopping *)

(* Split-heavy profile: splits and short delays are cheap to inject
   and recover from, so the floor is reached without stretching the
   wall clock; corruption and drops stay rare enough that each op
   converges in a few retries. *)
let profile =
  {
    Chaos.p_split = 320;
    p_delay = 60;
    p_corrupt = 25;
    p_drop = 25;
    max_delay_s = 0.004;
  }

let test_chaos_soak () =
  let seed = chaos_seed () in
  with_workdir (fun dir ->
      let drbg = Tep_crypto.Drbg.create ~seed:("env-" ^ seed) in
      let ca = Tep_crypto.Pki.create_ca ~bits:512 ~name:"CA" drbg in
      let directory =
        Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
      in
      let alice = Participant.create ~bits:512 ~ca ~name:"alice" drbg in
      Participant.Directory.register directory alice;
      let db = Database.create ~name:"chaosdb" in
      ignore
        (Database.create_table db ~name:"stock"
           (Schema.all_int [ "sku"; "qty" ]));
      let wal = Wal.open_file (Filename.concat dir "wal.log") in
      let engine = Engine.create ~wal ~directory db in
      let server =
        Server.create ~checkpoint:(dir, wal)
          ~drbg:(Tep_crypto.Drbg.create ~seed:"chaos-server")
          ~participants:[ ("alice", alice) ]
          engine
      in
      let spath = Filename.concat dir "server.sock" in
      let ppath = Filename.concat dir "proxy.sock" in
      let stop = Stdlib.Atomic.make false in
      let th =
        Thread.create (fun () -> Server.serve_unix server ~path:spath ~stop) ()
      in
      Fun.protect
        ~finally:(fun () ->
          Stdlib.Atomic.set stop true;
          Server.wake server;
          Thread.join th)
        (fun () ->
          Thread.delay 0.05 (* let the accept loop bind *);
          let proxy =
            Chaos.start ~profile ~seed ~listen:ppath ~upstream:spath ()
          in
          (* Connect and authenticate through the chaos: the handshake
             itself can be corrupted or dropped, so the first session
             may take several fresh clients. *)
          let rec fresh_client k =
            if k > 25 then Alcotest.fail "no session survived the chaos"
            else
              match
                Client.connect_unix
                  ~drbg:
                    (Tep_crypto.Drbg.create
                       ~seed:(Printf.sprintf "chaos-client-%d" k))
                  ~retries:8 ~backoff:0.01 ppath
              with
              | Error _ ->
                  Thread.delay 0.02;
                  fresh_client (k + 1)
              | Ok c -> (
                  match Client.authenticate c alice with
                  | Ok () -> c
                  | Error _ ->
                      Client.close c;
                      Thread.delay 0.02;
                      fresh_client (k + 1))
          in
          let c = fresh_client 0 in
          (* One logical op = one fixed rid, re-issued until the
             client sees success.  Exactly-once therefore rests
             entirely on the server's dedup table. *)
          let submit_once i =
            let rid = Printf.sprintf "soak-%d" i in
            let op =
              Message.Op_insert
                {
                  table = "stock";
                  cells = [| Value.Int i; Value.Int (i * 7) |];
                }
            in
            let rec go k =
              if k > 60 then Alcotest.failf "op %d never succeeded" i
              else
                match Client.submit_idem c ~rid op with
                | Ok _ -> ()
                | Error _ ->
                    Thread.delay 0.002;
                    go (k + 1)
            in
            go 0
          in
          let n = ref 0 in
          while
            !n < n_min || (Chaos.faults proxy < fault_floor && !n < n_cap)
          do
            submit_once !n;
            incr n
          done;
          let n_ops = !n in
          Alcotest.(check bool)
            (Printf.sprintf "fault floor: %d injected (>= %d wanted)"
               (Chaos.faults proxy) fault_floor)
            true
            (Chaos.faults proxy >= fault_floor);
          Chaos.stop proxy;
          (* Exactly-once: one backend row per logical op. *)
          Alcotest.(check int) "no duplicate, no loss" n_ops
            (Table.row_count (Database.get_table_exn db "stock"));
          (* Clean connection for the final checks. *)
          let dc =
            ok
              (Client.connect_unix
                 ~drbg:(Tep_crypto.Drbg.create ~seed:"chaos-direct")
                 spath)
          in
          ok (Client.authenticate dc alice);
          let report, store_audit = ok (Client.verify dc ()) in
          Alcotest.(check bool) "verify clean after the soak" true
            (Message.report_ok report);
          (match store_audit with
          | Some a ->
              Alcotest.(check bool) "store audit clean" true
                (Message.report_ok a)
          | None -> Alcotest.fail "whole-db verify must audit the store");
          (* A blind retry of an op the server already executed: the
             dedup table must answer it without re-executing, and the
             hit must be visible in the health counters. *)
          ignore
            (ok
               (Client.submit_idem dc ~rid:"soak-0"
                  (Message.Op_insert
                     {
                       table = "stock";
                       cells = [| Value.Int 0; Value.Int 0 |];
                     })));
          Alcotest.(check int) "retried op did not re-execute" n_ops
            (Table.row_count (Database.get_table_exn db "stock"));
          let h = ok (Client.ping dc) in
          Alcotest.(check bool)
            (Printf.sprintf "dedup hit visible in batch_stats (%d)"
               h.Client.dedup_hits)
            true
            (h.Client.dedup_hits >= 1);
          Alcotest.(check int) "server executed each op exactly once" n_ops
            h.Client.h_ops;
          (* Durability: checkpoint, then rebuild from disk and compare
             root hashes. *)
          ignore (ok (Client.checkpoint dc));
          Client.close dc;
          match Recovery.recover ~final_checkpoint:false ~dir ~directory () with
          | Error e -> Alcotest.fail ("recovery failed: " ^ e)
          | Ok (recovered, rwal, rep) ->
              Wal.close rwal;
              Alcotest.(check bool) "recovered hash verified" true
                rep.Recovery.hash_verified;
              Alcotest.(check string) "recovered root matches live root"
                (Engine.root_hash engine)
                (Engine.root_hash recovered)))

let () =
  Alcotest.run "chaos"
    [ ("soak", [ Alcotest.test_case "network chaos soak" `Slow test_chaos_soak ]) ]
