(* Merkle membership proofs and slice delivery. *)
open Tep_store
open Tep_tree
open Tep_core

let ok = function Ok v -> v | Error e -> Alcotest.fail e
let algo = Tep_crypto.Digest_algo.SHA1

let build_forest () =
  let f = Forest.create () in
  let root = ok (Forest.insert f (Value.Text "db")) in
  let t1 = ok (Forest.insert ~parent:root f (Value.Text "t1")) in
  let rows =
    List.init 5 (fun i ->
        let r = ok (Forest.insert ~parent:t1 f (Value.Int i)) in
        let cells =
          List.init 3 (fun c ->
              ok (Forest.insert ~parent:r f (Value.Int ((i * 10) + c))))
        in
        (r, cells))
  in
  let cache = Merkle.create_cache algo f in
  let root_hash = ok (Merkle.hash cache root) in
  (f, cache, root, root_hash, rows)

let test_prove_verify () =
  let f, cache, _, root_hash, rows = build_forest () in
  List.iter
    (fun (_, cells) ->
      List.iter
        (fun cell ->
          let p = ok (Proof.prove cache f cell) in
          (match Proof.verify algo ~root_hash p with
          | Ok () -> ()
          | Error e -> Alcotest.fail e);
          Alcotest.(check int) "path depth" 3 (List.length p.Proof.path))
        cells)
    rows

let test_proof_of_root_leaf () =
  let f = Forest.create () in
  let lone = ok (Forest.insert f (Value.Int 42)) in
  let cache = Merkle.create_cache algo f in
  let h = ok (Merkle.hash cache lone) in
  let p = ok (Proof.prove cache f lone) in
  Alcotest.(check int) "empty path" 0 (List.length p.Proof.path);
  Alcotest.(check bool) "root is self" true (Oid.equal (Proof.root_oid p) lone);
  match Proof.verify algo ~root_hash:h p with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_compound_rejected () =
  let f, cache, _, _, rows = build_forest () in
  let row, _ = List.hd rows in
  match Proof.prove cache f row with
  | Ok _ -> Alcotest.fail "compound object proven as atomic"
  | Error _ -> ()

let test_wrong_value_rejected () =
  let f, cache, _, root_hash, rows = build_forest () in
  let _, cells = List.hd rows in
  let p = ok (Proof.prove cache f (List.hd cells)) in
  let forged = { p with Proof.leaf_value = Value.Int 999_999 } in
  match Proof.verify algo ~root_hash forged with
  | Ok () -> Alcotest.fail "forged value accepted"
  | Error _ -> ()

let test_wrong_root_rejected () =
  let f, cache, _, _, rows = build_forest () in
  let _, cells = List.hd rows in
  let p = ok (Proof.prove cache f (List.hd cells)) in
  match Proof.verify algo ~root_hash:(String.make 20 'x') p with
  | Ok () -> Alcotest.fail "wrong root accepted"
  | Error _ -> ()

let test_sibling_swap_rejected () =
  let f, cache, _, root_hash, rows = build_forest () in
  let _, cells = List.hd rows in
  let p = ok (Proof.prove cache f (List.hd cells)) in
  (* perturb a sibling hash in the first step *)
  let forged =
    match p.Proof.path with
    | s :: rest ->
        let children =
          List.map
            (fun (o, h) ->
              if Oid.equal o p.Proof.leaf_oid then (o, h)
              else (o, String.map (fun c -> Char.chr (Char.code c lxor 1)) h))
            s.Proof.children
        in
        { p with Proof.path = { s with Proof.children } :: rest }
    | [] -> Alcotest.fail "expected a path"
  in
  match Proof.verify algo ~root_hash forged with
  | Ok () -> Alcotest.fail "sibling forgery accepted"
  | Error _ -> ()

let test_codec_roundtrip () =
  let f, cache, _, root_hash, rows = build_forest () in
  let _, cells = List.nth rows 2 in
  let p = ok (Proof.prove cache f (List.nth cells 1)) in
  let buf = Buffer.create 256 in
  Proof.encode buf p;
  let p', off = Proof.decode (Buffer.contents buf) 0 in
  Alcotest.(check int) "consumed" (Buffer.length buf) off;
  (match Proof.verify algo ~root_hash p' with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "size_bytes" (Buffer.length buf) (Proof.size_bytes p)

(* Truncated encodings: every strict prefix of a valid proof encoding
   must be rejected by the decoder or decode to a proof that fails
   verification — no prefix may survive as a verifying proof. *)
let test_codec_truncated () =
  let f, cache, _, root_hash, rows = build_forest () in
  let _, cells = List.nth rows 2 in
  let p = ok (Proof.prove cache f (List.nth cells 1)) in
  let buf = Buffer.create 256 in
  Proof.encode buf p;
  let s = Buffer.contents buf in
  for cut = 0 to String.length s - 1 do
    match Proof.decode (String.sub s 0 cut) 0 with
    | exception (Failure _ | Invalid_argument _) -> ()
    | p', _ -> (
        match Proof.verify algo ~root_hash p' with
        | Error _ -> ()
        | Ok () ->
            Alcotest.failf "prefix of %d/%d bytes decoded to a verifying proof"
              cut (String.length s))
  done

(* ---- slices ---- *)

let engine_fixture () =
  let drbg = Tep_crypto.Drbg.create ~seed:"test-slice" in
  let ca = Tep_crypto.Pki.create_ca ~bits:512 ~name:"CA" drbg in
  let dir = Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca) in
  let alice = Participant.create ~bits:512 ~ca ~name:"alice" drbg in
  Participant.Directory.register dir alice;
  let db = Database.create ~name:"s" in
  (* documents table: the realistic slice-delivery case is big cell
     payloads, where proof-path hashes are far smaller than data *)
  let schema =
    Schema.make
      [
        { Schema.name = "id"; ty = Value.TInt; nullable = false };
        { Schema.name = "doc"; ty = Value.TText; nullable = false };
        { Schema.name = "status"; ty = Value.TInt; nullable = false };
      ]
  in
  ignore (ok (Database.create_table db ~name:"t" schema));
  let eng = Engine.create ~directory:dir db in
  (* bulk-load in one complex operation: short history, large state *)
  ignore
    (ok
       (Engine.complex_op eng alice (fun () ->
            let rec go i =
              if i >= 200 then Ok ()
              else
                match
                  Engine.insert_row eng alice ~table:"t"
                    [|
                      Value.Int i;
                      Value.Text (String.make 120 (Char.chr (65 + (i mod 26))));
                      Value.Int 0;
                    |]
                with
                | Ok _ -> go (i + 1)
                | Error e -> Error e
            in
            go 0)));
  ok (Engine.update_cell eng alice ~table:"t" ~row:7 ~col:2 (Value.Int 777));
  (eng, alice, drbg)

let test_slice_roundtrip_and_verify () =
  let eng, _, _ = engine_fixture () in
  let cell = Option.get (Tree_view.cell_oid (Engine.mapping eng) "t" 7 2) in
  let slice = ok (Slice.create eng cell) in
  Alcotest.(check bool) "value carried" true
    (Value.equal (Slice.leaf_value slice) (Value.Int 777));
  let report = ok (Slice.verify slice) in
  Alcotest.(check bool) "verifies" true (Verifier.ok report);
  (* wire roundtrip *)
  let slice' = ok (Slice.of_string (Slice.to_string slice)) in
  Alcotest.(check bool) "roundtrip verifies" true
    (Verifier.ok (ok (Slice.verify slice')))

let test_slice_much_smaller_than_bundle () =
  let eng, _, _ = engine_fixture () in
  let cell = Option.get (Tree_view.cell_oid (Engine.mapping eng) "t" 7 2) in
  let slice = ok (Slice.create eng cell) in
  let bundle = ok (Bundle.create eng (Engine.root_oid eng)) in
  let slice_bytes = String.length (Slice.to_string slice) in
  let bundle_bytes = String.length (Bundle.to_string bundle) in
  Alcotest.(check bool)
    (Printf.sprintf "slice %dB < bundle %dB" slice_bytes bundle_bytes)
    true
    (slice_bytes * 2 < bundle_bytes)

let test_slice_forged_value () =
  let eng, _, _ = engine_fixture () in
  let cell = Option.get (Tree_view.cell_oid (Engine.mapping eng) "t" 7 2) in
  let slice = ok (Slice.create eng cell) in
  let forged =
    {
      slice with
      Slice.proof = { slice.Slice.proof with Proof.leaf_value = Value.Int 1 };
    }
  in
  match Slice.verify forged with
  | Ok report -> Alcotest.(check bool) "rejected" false (Verifier.ok report)
  | Error _ -> ()

let test_slice_stale_after_update () =
  (* a slice proves membership in a STATE; after the state moves on,
     the old slice no longer verifies against fresh provenance *)
  let eng, alice, _ = engine_fixture () in
  let cell = Option.get (Tree_view.cell_oid (Engine.mapping eng) "t" 7 2) in
  let slice = ok (Slice.create eng cell) in
  ok (Engine.update_cell eng alice ~table:"t" ~row:3 ~col:0 (Value.Int 5));
  let fresh = ok (Slice.create eng cell) in
  (* old slice still verifies against its own records (they chain),
     but mixing the old proof with the new records must fail *)
  let mixed = { slice with Slice.root_records = fresh.Slice.root_records } in
  (match Slice.verify mixed with
  | Ok report -> Alcotest.(check bool) "stale proof rejected" false (Verifier.ok report)
  | Error _ -> ());
  Alcotest.(check bool) "fresh slice fine" true
    (Verifier.ok (ok (Slice.verify fresh)))

let test_slice_foreign_ca () =
  let eng, _, drbg = engine_fixture () in
  let cell = Option.get (Tree_view.cell_oid (Engine.mapping eng) "t" 7 2) in
  let slice = ok (Slice.create eng cell) in
  let other = Tep_crypto.Pki.create_ca ~bits:512 ~name:"Other" drbg in
  match Slice.verify ~trusted_ca:(Tep_crypto.Pki.ca_public_key other) slice with
  | Ok report -> Alcotest.(check bool) "foreign anchor rejected" false (Verifier.ok report)
  | Error _ -> ()

let () =
  Alcotest.run "proof"
    [
      ( "merkle-proofs",
        [
          Alcotest.test_case "prove & verify all cells" `Quick
            test_prove_verify;
          Alcotest.test_case "root leaf" `Quick test_proof_of_root_leaf;
          Alcotest.test_case "compound rejected" `Quick test_compound_rejected;
          Alcotest.test_case "wrong value" `Quick test_wrong_value_rejected;
          Alcotest.test_case "wrong root" `Quick test_wrong_root_rejected;
          Alcotest.test_case "sibling forgery" `Quick
            test_sibling_swap_rejected;
          Alcotest.test_case "codec" `Quick test_codec_roundtrip;
          Alcotest.test_case "codec truncated" `Quick test_codec_truncated;
        ] );
      ( "slices",
        [
          Alcotest.test_case "roundtrip & verify" `Quick
            test_slice_roundtrip_and_verify;
          Alcotest.test_case "smaller than bundle" `Quick
            test_slice_much_smaller_than_bundle;
          Alcotest.test_case "forged value" `Quick test_slice_forged_value;
          Alcotest.test_case "stale proof" `Quick test_slice_stale_after_update;
          Alcotest.test_case "foreign CA" `Quick test_slice_foreign_ca;
        ] );
    ]
