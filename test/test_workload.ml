(* Workloads: Table 1 node counts, Table 2 operation mixes, paper
   scenarios. *)
open Tep_store
open Tep_core
open Tep_workload

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let test_table1_node_counts () =
  (* the headline check: our synthetic databases have exactly the node
     counts of Table 1(b) *)
  List.iteri
    (fun i expected ->
      let db = Synth.paper_database (i + 1) in
      Alcotest.(check int)
        (Printf.sprintf "database %d" (i + 1))
        expected (Database.node_count db))
    Synth.paper_node_counts

let test_table1_specs () =
  Alcotest.(check int) "4 tables" 4 (List.length Synth.paper_tables);
  let t1 = List.hd Synth.paper_tables in
  Alcotest.(check int) "t1 attrs" 8 t1.Synth.attrs;
  Alcotest.(check int) "t1 rows" 4000 t1.Synth.rows

let test_determinism () =
  let h db = Tep_tree.Streaming.hash_database Tep_crypto.Digest_algo.SHA1 db in
  let a = Synth.build_database ~seed:"s" [ List.hd Synth.paper_tables ] in
  let b = Synth.build_database ~seed:"s" [ List.hd Synth.paper_tables ] in
  Alcotest.(check string) "same seed same db" (Digest.to_hex (Digest.string (h a)))
    (Digest.to_hex (Digest.string (h b)));
  let c = Synth.build_database ~seed:"other" [ List.hd Synth.paper_tables ] in
  Alcotest.(check bool) "different seed" false (String.equal (h a) (h c))

let test_scale () =
  let spec = Synth.scale 0.1 (List.hd Synth.paper_tables) in
  Alcotest.(check int) "scaled rows" 400 spec.Synth.rows;
  let tiny = Synth.scale 0.00001 (List.hd Synth.paper_tables) in
  Alcotest.(check int) "min 1 row" 1 tiny.Synth.rows

let test_title_database () =
  let db = Synth.build_title_database ~rows:100 in
  (* nodes: 1 root + 1 table + 100 rows * (1 + 2 cells) *)
  Alcotest.(check int) "node count" (2 + 300) (Database.node_count db)

let small_engine () =
  let env = Scenario.make_env ~seed:"wl" () in
  let p = Scenario.participant env "worker" in
  let db =
    Synth.build_database ~seed:"wl-db"
      [ { Synth.name = "t1"; attrs = 4; rows = 50 } ]
  in
  let eng = Engine.create ~directory:env.Scenario.directory db in
  (eng, p, env)

let test_setup_a_points () =
  Alcotest.(check int) "1 + 10 + 7 points" 18 (List.length Ops_gen.setup_a_points);
  Alcotest.(check int) "first" 1 (List.hd Ops_gen.setup_a_points);
  Alcotest.(check bool) "has 4000" true (List.mem 4000 Ops_gen.setup_a_points);
  Alcotest.(check bool) "has 32000" true (List.mem 32000 Ops_gen.setup_a_points)

let test_updates_spread () =
  let eng, p, env = small_engine () in
  let op =
    Ops_gen.updates_spread env.Scenario.drbg (Engine.backend eng) ~table:"t1"
      ~cells:20 ~max_rows:10
  in
  Alcotest.(check int) "20 primitives" 20 (List.length op);
  let m = ok (Ops_gen.apply eng p op) in
  (* 20 cell updates in 10 rows: <=20 cell records + 10 rows + table + root *)
  Alcotest.(check bool) "records plausible" true
    (m.Engine.records_emitted >= 20 && m.Engine.records_emitted <= 32);
  Alcotest.(check bool) "verifies" true
    (Verifier.ok (ok (Engine.verify_object eng (Engine.root_oid eng))))

let test_all_deletes_inserts () =
  let eng, p, env = small_engine () in
  let del = Ops_gen.all_deletes (Engine.backend eng) ~table:"t1" ~count:10 in
  Alcotest.(check int) "10 deletes" 10 (List.length del);
  let m = ok (Ops_gen.apply eng p del) in
  (* all targets die: only table + root records *)
  Alcotest.(check int) "2 inherited" 2 m.Engine.records_emitted;
  let ins = Ops_gen.all_inserts env.Scenario.drbg (Engine.backend eng) ~table:"t1" ~count:5 in
  let m = ok (Ops_gen.apply eng p ins) in
  (* 5 rows * (1 row + 4 cells) + table + root *)
  Alcotest.(check int) "insert records" (5 * 5 + 2) m.Engine.records_emitted;
  Alcotest.(check int) "row count" 45
    (Table.row_count (Database.get_table_exn (Engine.backend eng) "t1"))

let test_mixed_ops_composition () =
  let eng, _, env = small_engine () in
  List.iter
    (fun mix ->
      let op =
        Ops_gen.mixed_ops env.Scenario.drbg (Engine.backend eng) ~table:"t1"
          ~total:100 mix
      in
      let dels =
        List.length
          (List.filter (function Ops_gen.Delete_row _ -> true | _ -> false) op)
      in
      let expected = int_of_float (float_of_int 100 *. mix.Ops_gen.deletes_pct /. 100.) in
      (* live-row exhaustion can reduce deletes, never increase *)
      Alcotest.(check bool)
        (Printf.sprintf "deletes ~%d" expected)
        true
        (dels <= expected && dels >= min expected 40))
    Ops_gen.paper_mixes

let test_paper_mixes () =
  Alcotest.(check int) "four mixes" 4 (List.length Ops_gen.paper_mixes);
  List.iter
    (fun m ->
      let total = m.Ops_gen.deletes_pct +. m.Ops_gen.inserts_pct +. m.Ops_gen.updates_pct in
      Alcotest.(check bool) "sums to 100" true (abs_float (total -. 100.) < 0.5))
    Ops_gen.paper_mixes

let test_clinical_trial () =
  let env = Scenario.make_env () in
  let c = Scenario.clinical_trial ~patients:5 env in
  (* the FDA verifies the delivered trial result *)
  let report = ok (Engine.verify_object c.Scenario.engine c.Scenario.trial_result) in
  Alcotest.(check bool) "trial verifies" true (Verifier.ok report);
  (* provenance includes Pamela's amendment *)
  let _, records = ok (Engine.deliver c.Scenario.engine c.Scenario.trial_result) in
  let by_pamela =
    List.filter (fun r -> r.Record.participant = "PCP Pamela") records
  in
  Alcotest.(check bool) "amendment visible" true (by_pamela <> []);
  Alcotest.(check int) "five participants" 5 (List.length c.Scenario.participants)

let test_figure2_scenario () =
  let env = Scenario.make_env () in
  let f = Scenario.figure2 env in
  let _, records = ok (Atomic.deliver f.Scenario.store f.Scenario.d) in
  Alcotest.(check int) "7 records" 7 (List.length records);
  let report = ok (Atomic.verify f.Scenario.store f.Scenario.d) in
  Alcotest.(check bool) "verifies" true (Verifier.ok report)

let () =
  Alcotest.run "workload"
    [
      ( "synth",
        [
          Alcotest.test_case "table 1(b) node counts" `Quick
            test_table1_node_counts;
          Alcotest.test_case "table 1(a) specs" `Quick test_table1_specs;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "scale" `Quick test_scale;
          Alcotest.test_case "title database" `Quick test_title_database;
        ] );
      ( "ops",
        [
          Alcotest.test_case "setup A points" `Quick test_setup_a_points;
          Alcotest.test_case "updates spread" `Quick test_updates_spread;
          Alcotest.test_case "all deletes/inserts" `Quick
            test_all_deletes_inserts;
          Alcotest.test_case "mixed ops" `Quick test_mixed_ops_composition;
          Alcotest.test_case "paper mixes" `Quick test_paper_mixes;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "clinical trial" `Quick test_clinical_trial;
          Alcotest.test_case "figure 2" `Quick test_figure2_scenario;
        ] );
    ]
