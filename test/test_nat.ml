(* Unit and property tests for arbitrary-precision naturals. *)
open Tep_bignum

let nat = Alcotest.testable (Fmt.of_to_string Nat.to_decimal) Nat.equal

let check_nat = Alcotest.check nat

(* qcheck generator: random naturals up to ~600 bits. *)
let gen_nat =
  QCheck2.Gen.(
    let* nbytes = int_range 0 75 in
    let* s = string_size ~gen:char (return nbytes) in
    return (Nat.of_bytes_be s))


let test_constants () =
  check_nat "zero" Nat.zero (Nat.of_int 0);
  check_nat "one" Nat.one (Nat.of_int 1);
  check_nat "two" Nat.two (Nat.of_int 2);
  Alcotest.(check bool) "is_zero" true (Nat.is_zero Nat.zero);
  Alcotest.(check bool) "is_one" true (Nat.is_one Nat.one);
  Alcotest.(check bool) "one not zero" false (Nat.is_zero Nat.one)

let test_of_to_int () =
  List.iter
    (fun n ->
      Alcotest.(check int) (string_of_int n) n (Nat.to_int (Nat.of_int n)))
    [ 0; 1; 2; 41; 1 lsl 25; (1 lsl 26) - 1; 1 lsl 26; 123456789; max_int ];
  Alcotest.check_raises "negative" (Invalid_argument "Nat.of_int: negative")
    (fun () -> ignore (Nat.of_int (-1)))

let test_to_int_overflow () =
  let big = Nat.shift_left Nat.one 80 in
  Alcotest.(check (option int)) "overflow" None (Nat.to_int_opt big);
  Alcotest.(check (option int))
    "max_int fits" (Some max_int)
    (Nat.to_int_opt (Nat.of_int max_int))

let test_add_sub_basic () =
  let a = Nat.of_decimal "123456789012345678901234567890" in
  let b = Nat.of_decimal "987654321098765432109876543210" in
  check_nat "a+b"
    (Nat.of_decimal "1111111110111111111011111111100")
    (Nat.add a b);
  check_nat "b-a"
    (Nat.of_decimal "864197532086419753208641975320")
    (Nat.sub b a);
  check_nat "a-a" Nat.zero (Nat.sub a a);
  Alcotest.check_raises "negative sub"
    (Invalid_argument "Nat.sub: negative result") (fun () ->
      ignore (Nat.sub a b))

let test_mul_known () =
  check_nat "mul"
    (Nat.of_decimal "121932631137021795226185032733622923332237463801111263526900")
    (Nat.mul
       (Nat.of_decimal "123456789012345678901234567890")
       (Nat.of_decimal "987654321098765432109876543210"));
  check_nat "mul by zero" Nat.zero (Nat.mul Nat.zero (Nat.of_int 12345));
  check_nat "mul by one"
    (Nat.of_int 12345)
    (Nat.mul Nat.one (Nat.of_int 12345))

let test_divmod_known () =
  let q, r =
    Nat.divmod
      (Nat.of_decimal "121932631137021795226185032733622923332237463801111263526901")
      (Nat.of_decimal "987654321098765432109876543210")
  in
  check_nat "q" (Nat.of_decimal "123456789012345678901234567890") q;
  check_nat "r" Nat.one r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Nat.divmod Nat.one Nat.zero))

let test_shifts () =
  let a = Nat.of_decimal "123456789123456789" in
  check_nat "shl/shr" a (Nat.shift_right (Nat.shift_left a 77) 77);
  check_nat "shl 0" a (Nat.shift_left a 0);
  check_nat "shr to zero" Nat.zero (Nat.shift_right a 200);
  Alcotest.(check int) "num_bits of 2^k" 101 (Nat.num_bits (Nat.shift_left Nat.one 100));
  Alcotest.(check int) "num_bits zero" 0 (Nat.num_bits Nat.zero)

let test_testbit () =
  let a = Nat.of_int 0b1011001 in
  let bits = List.init 8 (Nat.testbit a) in
  Alcotest.(check (list bool))
    "bits"
    [ true; false; false; true; true; false; true; false ]
    bits

let test_hex_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Nat.to_hex (Nat.of_hex s)))
    [ "0"; "1"; "ff"; "deadbeef"; "123456789abcdef0123456789abcdef" ];
  check_nat "hex of 255" (Nat.of_int 255) (Nat.of_hex "FF");
  Alcotest.check_raises "bad hex" (Invalid_argument "Nat.of_hex: bad digit")
    (fun () -> ignore (Nat.of_hex "xyz"))

let test_bytes_roundtrip () =
  Alcotest.(check string) "empty" "" (Nat.to_bytes_be Nat.zero);
  Alcotest.(check string)
    "padded" "\x00\x00\x01\x02"
    (Nat.to_bytes_be_padded 4 (Nat.of_int 258));
  Alcotest.check_raises "pad too small"
    (Invalid_argument "Nat.to_bytes_be_padded: too short") (fun () ->
      ignore (Nat.to_bytes_be_padded 1 (Nat.of_int 258)))

let test_decimal () =
  Alcotest.(check string) "to_decimal" "0" (Nat.to_decimal Nat.zero);
  Alcotest.(check string)
    "roundtrip" "340282366920938463463374607431768211456"
    (Nat.to_decimal (Nat.of_decimal "340282366920938463463374607431768211456"))

let test_compare () =
  let a = Nat.of_int 5 and b = Nat.of_int 7 in
  Alcotest.(check bool) "lt" true (Nat.compare a b < 0);
  Alcotest.(check bool) "gt" true (Nat.compare b a > 0);
  Alcotest.(check bool) "eq" true (Nat.compare a a = 0);
  (* different limb counts *)
  Alcotest.(check bool)
    "big gt small" true
    (Nat.compare (Nat.shift_left Nat.one 100) (Nat.of_int max_int) > 0)

let test_karatsuba_agrees () =
  (* force both paths: numbers above/below the threshold *)
  let src = ref 17 in
  let next () =
    src := (!src * 1103515245 + 12345) land 0x3FFFFFFF;
    !src
  in
  for _ = 1 to 20 do
    let big1 =
      Nat.of_limbs (Array.init 70 (fun _ -> next () land ((1 lsl Nat.limb_bits) - 1)))
    in
    let big2 =
      Nat.of_limbs (Array.init 64 (fun _ -> next () land ((1 lsl Nat.limb_bits) - 1)))
    in
    let p = Nat.mul big1 big2 in
    if not (Nat.is_zero big2) then begin
      let q, r = Nat.divmod p big2 in
      check_nat "p/b2 = b1" big1 q;
      check_nat "p mod b2 = 0" Nat.zero r
    end
  done

(* Property tests. *)
let prop_add_comm =
  QCheck2.Test.make ~name:"add commutative" ~count:500
    QCheck2.Gen.(pair gen_nat gen_nat)
    (fun (a, b) -> Nat.equal (Nat.add a b) (Nat.add b a))

let prop_add_assoc =
  QCheck2.Test.make ~name:"add associative" ~count:500
    QCheck2.Gen.(triple gen_nat gen_nat gen_nat)
    (fun (a, b, c) ->
      Nat.equal (Nat.add a (Nat.add b c)) (Nat.add (Nat.add a b) c))

let prop_mul_comm =
  QCheck2.Test.make ~name:"mul commutative" ~count:300
    QCheck2.Gen.(pair gen_nat gen_nat)
    (fun (a, b) -> Nat.equal (Nat.mul a b) (Nat.mul b a))

let prop_distrib =
  QCheck2.Test.make ~name:"mul distributes over add" ~count:300
    QCheck2.Gen.(triple gen_nat gen_nat gen_nat)
    (fun (a, b, c) ->
      Nat.equal
        (Nat.mul a (Nat.add b c))
        (Nat.add (Nat.mul a b) (Nat.mul a c)))

let prop_divmod =
  QCheck2.Test.make ~name:"divmod invariant" ~count:500
    QCheck2.Gen.(pair gen_nat gen_nat)
    (fun (a, b) ->
      QCheck2.assume (not (Nat.is_zero b));
      let q, r = Nat.divmod a b in
      Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0)

let prop_sub_add =
  QCheck2.Test.make ~name:"(a+b)-b = a" ~count:500
    QCheck2.Gen.(pair gen_nat gen_nat)
    (fun (a, b) -> Nat.equal a (Nat.sub (Nat.add a b) b))

let prop_bytes_roundtrip =
  QCheck2.Test.make ~name:"bytes roundtrip" ~count:500 gen_nat (fun a ->
      Nat.equal a (Nat.of_bytes_be (Nat.to_bytes_be a)))

let prop_hex_roundtrip =
  QCheck2.Test.make ~name:"hex roundtrip" ~count:500 gen_nat (fun a ->
      Nat.equal a (Nat.of_hex (Nat.to_hex a)))

let prop_decimal_roundtrip =
  QCheck2.Test.make ~name:"decimal roundtrip" ~count:200 gen_nat (fun a ->
      Nat.equal a (Nat.of_decimal (Nat.to_decimal a)))

let prop_shift =
  QCheck2.Test.make ~name:"shift left then right" ~count:300
    QCheck2.Gen.(pair gen_nat (int_range 0 120))
    (fun (a, k) -> Nat.equal a (Nat.shift_right (Nat.shift_left a k) k))

let () =

  Alcotest.run "nat"
    [
      ( "unit",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
          Alcotest.test_case "add/sub" `Quick test_add_sub_basic;
          Alcotest.test_case "mul known" `Quick test_mul_known;
          Alcotest.test_case "divmod known" `Quick test_divmod_known;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "testbit" `Quick test_testbit;
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "decimal" `Quick test_decimal;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "karatsuba agrees" `Quick test_karatsuba_agrees;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_add_comm;
            prop_add_assoc;
            prop_mul_comm;
            prop_distrib;
            prop_divmod;
            prop_sub_add;
            prop_bytes_roundtrip;
            prop_hex_roundtrip;
            prop_decimal_roundtrip;
            prop_shift;
          ] );
    ]
