(* Provenance store: chains, DAG closure, relational mirror, codec. *)
open Tep_store
open Tep_tree
open Tep_core

let mk_rec ?(kind = Record.Update) ?(prevs = []) ?(inputs = []) ~seq ~oid
    ~checksum () =
  {
    Record.seq_id = seq;
    participant = "p";
    kind;
    inherited = false;
    input_oids = List.map fst inputs;
    input_hashes = List.map snd inputs;
    output_oid = Oid.of_int oid;
    output_hash = Printf.sprintf "h-%d-%d" oid seq;
    output_value = None;
    prev_checksums = prevs;
    checksum;
  }

let test_append_latest () =
  let s = Provstore.create () in
  Provstore.append s (mk_rec ~kind:Record.Insert ~seq:0 ~oid:1 ~checksum:"c0" ());
  Provstore.append s (mk_rec ~seq:1 ~oid:1 ~checksum:"c1" ());
  Provstore.append s (mk_rec ~kind:Record.Insert ~seq:0 ~oid:2 ~checksum:"c2" ());
  Alcotest.(check int) "count" 3 (Provstore.record_count s);
  Alcotest.(check int) "objects" 2 (Provstore.object_count s);
  (match Provstore.latest s (Oid.of_int 1) with
  | Some r -> Alcotest.(check int) "latest seq" 1 r.Record.seq_id
  | None -> Alcotest.fail "missing");
  Alcotest.(check int) "records_for" 2
    (List.length (Provstore.records_for s (Oid.of_int 1)));
  Alcotest.(check bool) "find_by_checksum" true
    (Provstore.find_by_checksum s "c1" <> None)

let test_seq_monotonic () =
  let s = Provstore.create () in
  Provstore.append s (mk_rec ~seq:5 ~oid:1 ~checksum:"a" ());
  Alcotest.(check bool) "regression rejected" true
    (try
       Provstore.append s (mk_rec ~seq:5 ~oid:1 ~checksum:"b" ());
       false
     with Invalid_argument _ -> true)

let test_provenance_object_closure () =
  (* A and B feed an aggregate C; closure from C pulls in everything. *)
  let s = Provstore.create () in
  Provstore.append s (mk_rec ~kind:Record.Insert ~seq:0 ~oid:1 ~checksum:"a0" ());
  Provstore.append s
    (mk_rec ~seq:1 ~oid:1 ~checksum:"a1" ~prevs:[ "a0" ]
       ~inputs:[ (Oid.of_int 1, "h-1-0") ] ());
  Provstore.append s (mk_rec ~kind:Record.Insert ~seq:0 ~oid:2 ~checksum:"b0" ());
  Provstore.append s
    (mk_rec ~kind:Record.Aggregate ~seq:2 ~oid:3 ~checksum:"c0"
       ~prevs:[ "a1"; "b0" ]
       ~inputs:[ (Oid.of_int 1, "h-1-1"); (Oid.of_int 2, "h-2-0") ]
       ());
  let prov = Provstore.provenance_object s (Oid.of_int 3) in
  Alcotest.(check int) "closure size" 4 (List.length prov);
  (* closure of A alone excludes B and C *)
  Alcotest.(check int) "A closure" 2
    (List.length (Provstore.provenance_object s (Oid.of_int 1)));
  (* sorted by seq *)
  let seqs = List.map (fun r -> r.Record.seq_id) prov in
  Alcotest.(check (list int)) "sorted" (List.sort compare seqs) seqs

let test_relation_mirror () =
  let s = Provstore.create () in
  Provstore.append s (mk_rec ~kind:Record.Insert ~seq:0 ~oid:1 ~checksum:"x" ());
  Provstore.append s (mk_rec ~seq:1 ~oid:1 ~checksum:"y" ());
  let rel = Provstore.relation s in
  Alcotest.(check int) "rows" 2 (Table.row_count rel);
  Alcotest.(check int) "4 columns" 4 (Schema.arity (Table.schema rel));
  (* space accounting *)
  Alcotest.(check int) "paper bytes" (2 * 140) (Provstore.paper_space_bytes s);
  Alcotest.(check bool) "encoded bytes positive" true (Provstore.space_bytes s > 0)

let test_serialisation () =
  let s = Provstore.create () in
  Provstore.append s (mk_rec ~kind:Record.Insert ~seq:0 ~oid:1 ~checksum:"c0" ());
  Provstore.append s
    (mk_rec ~seq:1 ~oid:1 ~checksum:"c1" ~prevs:[ "c0" ]
       ~inputs:[ (Oid.of_int 1, "h-1-0") ] ());
  match Provstore.of_string (Provstore.to_string s) with
  | Ok s' ->
      Alcotest.(check int) "count" 2 (Provstore.record_count s');
      Alcotest.(check bool) "latest" true
        ((Option.get (Provstore.latest s' (Oid.of_int 1))).Record.seq_id = 1)
  | Error e -> Alcotest.fail e

let test_serialisation_garbage () =
  (match Provstore.of_string "garbage" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  match Provstore.of_string "TEPPROV1zzz\n\x05" with
  | Ok _ -> Alcotest.fail "bad algo accepted"
  | Error _ -> ()

let test_all_arrival_order () =
  let s = Provstore.create () in
  Provstore.append s (mk_rec ~kind:Record.Insert ~seq:0 ~oid:2 ~checksum:"b" ());
  Provstore.append s (mk_rec ~kind:Record.Insert ~seq:0 ~oid:1 ~checksum:"a" ());
  Alcotest.(check (list string)) "arrival order" [ "b"; "a" ]
    (List.map (fun r -> r.Record.checksum) (Provstore.all s))

let test_prune () =
  let s = Provstore.create () in
  (* A: insert + update; B: insert; C = agg(A@1, B@0); then A updated
     again; D: insert (dead, feeds nothing) *)
  Provstore.append s (mk_rec ~kind:Record.Insert ~seq:0 ~oid:1 ~checksum:"a0" ());
  Provstore.append s
    (mk_rec ~seq:1 ~oid:1 ~checksum:"a1" ~prevs:[ "a0" ]
       ~inputs:[ (Oid.of_int 1, "h-1-0") ] ());
  Provstore.append s (mk_rec ~kind:Record.Insert ~seq:0 ~oid:2 ~checksum:"b0" ());
  Provstore.append s
    (mk_rec ~kind:Record.Aggregate ~seq:2 ~oid:3 ~checksum:"c0"
       ~prevs:[ "a1"; "b0" ]
       ~inputs:[ (Oid.of_int 1, "h-1-1"); (Oid.of_int 2, "h-2-0") ]
       ());
  Provstore.append s
    (mk_rec ~seq:2 ~oid:1 ~checksum:"a2" ~prevs:[ "a1" ]
       ~inputs:[ (Oid.of_int 1, "h-1-1") ] ());
  Provstore.append s (mk_rec ~kind:Record.Insert ~seq:0 ~oid:4 ~checksum:"d0" ());
  Alcotest.(check int) "before" 6 (Provstore.record_count s);
  (* only C is live: keep C + its cited prefixes of A and B; drop A@2 and D *)
  let p = Provstore.prune s ~live:[ Oid.of_int 3 ] in
  Alcotest.(check int) "after" 4 (Provstore.record_count p);
  Alcotest.(check bool) "A@2 dropped" true
    (Provstore.find_by_checksum p "a2" = None);
  Alcotest.(check bool) "D dropped" true
    (Provstore.find_by_checksum p "d0" = None);
  Alcotest.(check bool) "cited prefix kept" true
    (Provstore.find_by_checksum p "a0" <> None
    && Provstore.find_by_checksum p "a1" <> None);
  (* original untouched *)
  Alcotest.(check int) "original intact" 6 (Provstore.record_count s);
  (* pruning with everything live is the identity on counts *)
  let full = Provstore.prune s ~live:(Provstore.objects s) in
  Alcotest.(check int) "identity" 6 (Provstore.record_count full)

let () =
  Alcotest.run "provstore"
    [
      ( "unit",
        [
          Alcotest.test_case "append/latest" `Quick test_append_latest;
          Alcotest.test_case "seq monotonic" `Quick test_seq_monotonic;
          Alcotest.test_case "closure" `Quick test_provenance_object_closure;
          Alcotest.test_case "relation mirror" `Quick test_relation_mirror;
          Alcotest.test_case "serialisation" `Quick test_serialisation;
          Alcotest.test_case "garbage" `Quick test_serialisation_garbage;
          Alcotest.test_case "arrival order" `Quick test_all_arrival_order;
          Alcotest.test_case "prune" `Quick test_prune;
        ] );
    ]
