(* XML documents over the forest model: parsing, printing, forest
   mapping, and provenance over document edits. *)
open Tep_store
open Tep_tree
open Tep_core

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let sample =
  {|<?xml version="1.0"?>
<protein id="P53" organism="human">
  <name>Cellular tumor antigen p53</name>
  <sequence length="393">MEEPQSDPSV</sequence>
  <keywords>
    <kw>tumor suppressor</kw>
    <kw>DNA-binding</kw>
  </keywords>
</protein>|}

let test_parse_structure () =
  match ok (Xml.parse sample) with
  | Xml.Element (name, attrs, children) ->
      Alcotest.(check string) "root" "protein" name;
      Alcotest.(check (list (pair string string)))
        "attrs"
        [ ("id", "P53"); ("organism", "human") ]
        attrs;
      Alcotest.(check int) "children" 3 (List.length children)
  | Xml.Text _ -> Alcotest.fail "expected element"

let test_parse_errors () =
  List.iter
    (fun bad ->
      match Xml.parse bad with
      | Ok _ -> Alcotest.fail ("accepted: " ^ bad)
      | Error _ -> ())
    [
      "";
      "<a>";
      "<a></b>";
      "<a x=y></a>";
      "just text";
      "<a></a><b></b>";
      "<a>&unknown;</a>";
    ]

let test_escape_roundtrip () =
  let doc =
    Xml.Element
      ("x", [ ("attr", "a<b&\"c'") ], [ Xml.Text "5 < 6 && \"quoted\"" ])
  in
  let doc' = ok (Xml.parse (Xml.to_string doc)) in
  Alcotest.(check bool) "roundtrip" true (doc = doc')

let test_print_parse_roundtrip () =
  let doc = ok (Xml.parse sample) in
  let doc' = ok (Xml.parse (Xml.to_string doc)) in
  Alcotest.(check bool) "stable" true (doc = doc');
  (* indented form parses back too *)
  let doc'' = ok (Xml.parse (Xml.to_string ~indent:true doc)) in
  Alcotest.(check bool) "indented stable" true (doc = doc'')

let test_forest_roundtrip () =
  let doc = ok (Xml.parse sample) in
  let f = Forest.create () in
  let root = ok (Xml.to_forest f doc) in
  (* node count: protein + 2 attrs + name(+text) + sequence(+attr+text)
     + keywords + 2 kw (+2 texts) = 13 *)
  Alcotest.(check int) "nodes" 13 (Forest.node_count f);
  let doc' = ok (Xml.of_forest f root) in
  Alcotest.(check bool) "roundtrip through forest" true (doc = doc')

let test_of_forest_rejects_non_xml () =
  let f = Forest.create () in
  let o = ok (Forest.insert f (Value.Int 42)) in
  match Xml.of_forest f o with
  | Ok _ -> Alcotest.fail "non-XML accepted"
  | Error _ -> ()

let test_provenance_over_document () =
  (* the paper's XML use case: track who edited which element *)
  let drbg = Tep_crypto.Drbg.create ~seed:"xml" in
  let ca = Tep_crypto.Pki.create_ca ~bits:512 ~name:"CA" drbg in
  let dir = Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca) in
  let curator = Participant.create ~bits:512 ~ca ~name:"curator" drbg in
  Participant.Directory.register dir curator;
  let db = Database.create ~name:"docs" in
  let eng = Engine.create ~directory:dir db in
  let doc = ok (Xml.parse sample) in
  (* ingest the document as one complex operation *)
  let root, _ =
    ok
      (Engine.complex_op eng curator (fun () ->
           let f = Engine.forest eng in
           (* build via engine-tracked primitive inserts *)
           let rec build ?parent node =
             match node with
             | Xml.Text t -> Engine.insert_object eng curator ?parent (Xml.text_value t)
             | Xml.Element (name, attrs, children) -> (
                 match
                   Engine.insert_object eng curator ?parent (Xml.element_value name)
                 with
                 | Error e -> Error e
                 | Ok oid ->
                     let rec go = function
                       | [] -> Ok oid
                       | `A (k, v) :: rest -> (
                           match
                             Engine.insert_object eng curator ~parent:oid
                               (Xml.attribute_value k v)
                           with
                           | Ok _ -> go rest
                           | Error e -> Error e)
                       | `C c :: rest -> (
                           match build ~parent:oid c with
                           | Ok _ -> go rest
                           | Error e -> Error e)
                     in
                     go
                       (List.map (fun (k, v) -> `A (k, v)) attrs
                       @ List.map (fun c -> `C c) children))
           in
           ignore f;
           build doc))
  in
  (* every node got an insert record *)
  Alcotest.(check int) "records = nodes" 13
    (Provstore.record_count (Engine.provstore eng));
  (* edit the sequence text *)
  let seq_text =
    let f = Engine.forest eng in
    let rec find oid =
      match Forest.value f oid with
      | Ok (Value.Text "MEEPQSDPSV") -> Some oid
      | _ ->
          List.fold_left
            (fun acc c -> match acc with Some _ -> acc | None -> find c)
            None (Forest.children f oid)
    in
    Option.get (find root)
  in
  ok (Engine.update_object eng curator seq_text (Xml.text_value "MEEPQSDPSVEPPLSQ"));
  (* verify + recover the edited document *)
  let report = ok (Engine.verify_object eng root) in
  Alcotest.(check bool) "document verifies" true (Verifier.ok report);
  let doc' = ok (Xml.of_forest (Engine.forest eng) root) in
  let printed = Xml.to_string doc' in
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "edit visible" true (contains "MEEPQSDPSVEPPLSQ" printed)

let () =
  Alcotest.run "xml"
    [
      ( "unit",
        [
          Alcotest.test_case "parse structure" `Quick test_parse_structure;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "escapes" `Quick test_escape_roundtrip;
          Alcotest.test_case "print/parse roundtrip" `Quick
            test_print_parse_roundtrip;
          Alcotest.test_case "forest roundtrip" `Quick test_forest_roundtrip;
          Alcotest.test_case "non-XML rejected" `Quick
            test_of_forest_rejects_non_xml;
          Alcotest.test_case "provenance over document" `Quick
            test_provenance_over_document;
        ] );
    ]
