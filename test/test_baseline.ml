(* Baselines: plain tracking, Hasan-style linear chains, global chain;
   failure-locality contrast between local and global chaining. *)
open Tep_core
open Baseline

let env () =
  let drbg = Tep_crypto.Drbg.create ~seed:"test-baseline" in
  let ca = Tep_crypto.Pki.create_ca ~name:"CA" drbg in
  let dir = Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca) in
  let mk name =
    let p = Participant.create ~ca ~name drbg in
    Participant.Directory.register dir p;
    p
  in
  (dir, mk "alice", mk "bob")

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let test_plain_counts () =
  let t = Plain.create () in
  Plain.apply t ~participant:"p" (Insert (1, "v1"));
  Plain.apply t ~participant:"p" (Update (1, "v2"));
  Plain.apply t ~participant:"p" (Delete 1);
  Alcotest.(check int) "two records (deletes drop)" 2 (Plain.record_count t);
  Alcotest.(check int) "12 bytes each" 24 (Plain.space_bytes t)

let test_linear_chain () =
  let dir, alice, bob = env () in
  let t = Linear.create () in
  ok (Linear.apply t alice (Insert (1, "v1")));
  ok (Linear.apply t bob (Update (1, "v2")));
  ok (Linear.apply t alice (Update (1, "v3")));
  Alcotest.(check int) "records" 3 (Linear.record_count t);
  Alcotest.(check int) "chain verified" 3 (ok (Linear.verify_object t dir 1));
  (match Linear.apply t alice (Insert (1, "dup")) with
  | Ok () -> Alcotest.fail "duplicate insert accepted"
  | Error _ -> ());
  match Linear.apply t alice (Update (99, "x")) with
  | Ok () -> Alcotest.fail "update of missing accepted"
  | Error _ -> ()

let test_linear_corruption_is_local () =
  let dir, alice, _ = env () in
  let t = Linear.create () in
  for oid = 1 to 5 do
    ok (Linear.apply t alice (Insert (oid, "v")));
    ok (Linear.apply t alice (Update (oid, "w")))
  done;
  Alcotest.(check bool) "corrupted" true (Linear.corrupt t 3);
  let good, bad = Linear.verify_all t dir in
  Alcotest.(check int) "only one object fails" 1 bad;
  Alcotest.(check int) "others fine" 4 good;
  (* unaffected object still verifies on its own *)
  Alcotest.(check int) "object 1 intact" 2 (ok (Linear.verify_object t dir 1))

let test_global_chain () =
  let dir, alice, bob = env () in
  let t = Global.create () in
  ok (Global.apply t alice (Insert (1, "v1")));
  ok (Global.apply t bob (Insert (2, "w1")));
  ok (Global.apply t alice (Update (1, "v2")));
  Alcotest.(check int) "records" 3 (Global.record_count t);
  Alcotest.(check bool) "verify 1" true (Result.is_ok (Global.verify_object t dir 1));
  Alcotest.(check bool) "verify 2" true (Result.is_ok (Global.verify_object t dir 2))

let test_global_corruption_is_global () =
  let dir, alice, _ = env () in
  let t = Global.create () in
  for oid = 1 to 5 do
    ok (Global.apply t alice (Insert (oid, "v")));
    ok (Global.apply t alice (Update (oid, "w")))
  done;
  Alcotest.(check bool) "corrupted" true (Global.corrupt t 3);
  let good, bad = Global.verify_all t dir in
  (* §3.2: corruption anywhere breaks everyone downstream *)
  Alcotest.(check bool) "most objects fail" true (bad >= 4);
  Alcotest.(check bool) "far fewer pass than local" true (good <= 1)

let test_global_serialises () =
  (* the global chain's seq is a single counter across objects *)
  let dir, alice, bob = env () in
  ignore dir;
  let t = Global.create () in
  ok (Global.apply t alice (Insert (1, "a")));
  ok (Global.apply t bob (Insert (2, "b")));
  ok (Global.apply t alice (Update (2, "b2")));
  Alcotest.(check int) "three records" 3 (Global.record_count t)

let test_delete_semantics () =
  let dir, alice, _ = env () in
  let lt = Linear.create () in
  ok (Linear.apply lt alice (Insert (1, "v")));
  ok (Linear.apply lt alice (Delete 1));
  (match Linear.verify_object lt dir 1 with
  | Ok _ -> Alcotest.fail "deleted object still has provenance"
  | Error _ -> ());
  let gt = Global.create () in
  ok (Global.apply gt alice (Insert (1, "v")));
  ok (Global.apply gt alice (Delete 1));
  ok (Global.apply gt alice (Insert (1, "v2")))

let () =
  Alcotest.run "baseline"
    [
      ( "unit",
        [
          Alcotest.test_case "plain counts" `Quick test_plain_counts;
          Alcotest.test_case "linear chain" `Quick test_linear_chain;
          Alcotest.test_case "linear corruption local" `Quick
            test_linear_corruption_is_local;
          Alcotest.test_case "global chain" `Quick test_global_chain;
          Alcotest.test_case "global corruption global" `Quick
            test_global_corruption_is_global;
          Alcotest.test_case "global serialises" `Quick test_global_serialises;
          Alcotest.test_case "delete semantics" `Quick test_delete_semantics;
        ] );
    ]
