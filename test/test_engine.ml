(* The provenance engine: record emission, inheritance, complex ops,
   backend/forest consistency, metrics. *)
open Tep_store
open Tep_tree
open Tep_core

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let setup ?(rows = 6) () =
  let drbg = Tep_crypto.Drbg.create ~seed:"test-engine" in
  let ca = Tep_crypto.Pki.create_ca ~name:"CA" drbg in
  let dir = Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca) in
  let alice = Participant.create ~ca ~name:"alice" drbg in
  let bob = Participant.create ~ca ~name:"bob" drbg in
  Participant.Directory.register dir alice;
  Participant.Directory.register dir bob;
  let db = Database.create ~name:"engdb" in
  let t = ok (Database.create_table db ~name:"t" (Schema.all_int [ "a"; "b"; "c" ])) in
  for i = 0 to rows - 1 do
    ignore (Table.insert t [| Value.Int i; Value.Int (i * 2); Value.Int (i * 3) |])
  done;
  let eng = Engine.create ~directory:dir db in
  (eng, alice, bob, dir)

let test_update_cell_records () =
  let eng, alice, _, _ = setup () in
  ok (Engine.update_cell eng alice ~table:"t" ~row:2 ~col:1 (Value.Int 99));
  let m = Engine.last_metrics eng in
  (* cell (actual) + row + table + root (inherited) *)
  Alcotest.(check int) "records" 4 m.Engine.records_emitted;
  Alcotest.(check int) "bytes" (4 * 140) m.Engine.checksum_bytes;
  (* actual vs inherited flags *)
  let coid = Option.get (Tree_view.cell_oid (Engine.mapping eng) "t" 2 1) in
  let cell_rec = Option.get (Provstore.latest (Engine.provstore eng) coid) in
  Alcotest.(check bool) "cell actual" false cell_rec.Record.inherited;
  let root_rec =
    Option.get (Provstore.latest (Engine.provstore eng) (Engine.root_oid eng))
  in
  Alcotest.(check bool) "root inherited" true root_rec.Record.inherited;
  (* backend stays in sync *)
  let tbl = Database.get_table_exn (Engine.backend eng) "t" in
  Alcotest.(check bool) "backend updated" true
    (Value.equal (Option.get (Table.get tbl 2)).Table.cells.(1) (Value.Int 99))

let test_first_touch_is_import () =
  let eng, alice, _, _ = setup () in
  ok (Engine.update_cell eng alice ~table:"t" ~row:0 ~col:0 (Value.Int 7));
  let coid = Option.get (Tree_view.cell_oid (Engine.mapping eng) "t" 0 0) in
  let r = Option.get (Provstore.latest (Engine.provstore eng) coid) in
  Alcotest.(check string) "kind" "import" (Record.kind_name r.Record.kind);
  Alcotest.(check int) "seq 0" 0 r.Record.seq_id;
  (* second touch is a plain update chaining to the import *)
  ok (Engine.update_cell eng alice ~table:"t" ~row:0 ~col:0 (Value.Int 8));
  let r2 = Option.get (Provstore.latest (Engine.provstore eng) coid) in
  Alcotest.(check string) "kind 2" "update" (Record.kind_name r2.Record.kind);
  Alcotest.(check int) "seq 1" 1 r2.Record.seq_id;
  Alcotest.(check bool) "chained" true
    (r2.Record.prev_checksums = [ r.Record.checksum ])

let test_insert_row_records () =
  let eng, _, bob, _ = setup () in
  let row = ok (Engine.insert_row eng bob ~table:"t" [| Value.Int 1; Value.Int 2; Value.Int 3 |]) in
  let m = Engine.last_metrics eng in
  (* row + 3 cells (inserts) + table + root (inherited) = 6 *)
  Alcotest.(check int) "records" 6 m.Engine.records_emitted;
  let roid = Option.get (Tree_view.row_oid (Engine.mapping eng) "t" row) in
  let r = Option.get (Provstore.latest (Engine.provstore eng) roid) in
  Alcotest.(check string) "row kind" "insert" (Record.kind_name r.Record.kind);
  Alcotest.(check int) "row seq" 0 r.Record.seq_id;
  Alcotest.(check bool) "backend row" true
    (Table.get (Database.get_table_exn (Engine.backend eng) "t") row <> None)

let test_delete_row_records () =
  let eng, alice, _, _ = setup () in
  ok (Engine.delete_row eng alice ~table:"t" 1);
  let m = Engine.last_metrics eng in
  (* only table + root survive: the paper's x inherited checksums *)
  Alcotest.(check int) "records" 2 m.Engine.records_emitted;
  Alcotest.(check bool) "backend deleted" true
    (Table.get (Database.get_table_exn (Engine.backend eng) "t") 1 = None);
  Alcotest.(check bool) "mapping dropped" true
    (Tree_view.row_oid (Engine.mapping eng) "t" 1 = None)

let test_complex_op_batching () =
  let eng, alice, _, _ = setup () in
  let (), m =
    ok
      (Engine.complex_op eng alice (fun () ->
           let rec go i =
             if i > 3 then Ok ()
             else
               match Engine.update_cell eng alice ~table:"t" ~row:i ~col:0 (Value.Int 0) with
               | Ok () -> go (i + 1)
               | Error e -> Error e
           in
           go 0))
  in
  (* 4 cells + 4 rows + table + root = 10 (one record each, not 4 per
     ancestor: Section 4.4 grouping) *)
  Alcotest.(check int) "grouped records" 10 m.Engine.records_emitted

let test_complex_op_failure_emits_nothing () =
  let eng, alice, _, _ = setup () in
  let before = Provstore.record_count (Engine.provstore eng) in
  (match
     Engine.complex_op eng alice (fun () ->
         ignore (Engine.update_cell eng alice ~table:"t" ~row:0 ~col:0 (Value.Int 1));
         Error "boom")
   with
  | Ok _ -> Alcotest.fail "failing body succeeded"
  | Error _ -> ());
  Alcotest.(check int) "no records" before
    (Provstore.record_count (Engine.provstore eng))

let test_double_update_in_batch () =
  (* Section 4.4: a complex op emits ONE record per touched object;
     two updates to the same cell collapse to a single record whose
     input is the pre-batch state and output the final state. *)
  let eng, alice, _, _ = setup () in
  ok (Engine.update_cell eng alice ~table:"t" ~row:0 ~col:0 (Value.Int 1));
  let coid = Option.get (Tree_view.cell_oid (Engine.mapping eng) "t" 0 0) in
  let before = Option.get (Provstore.latest (Engine.provstore eng) coid) in
  let (), m =
    ok
      (Engine.complex_op eng alice (fun () ->
           match Engine.update_cell eng alice ~table:"t" ~row:0 ~col:0 (Value.Int 2) with
           | Error e -> Error e
           | Ok () ->
               Engine.update_cell eng alice ~table:"t" ~row:0 ~col:0 (Value.Int 3)))
  in
  Alcotest.(check int) "one record per object" 4 m.Engine.records_emitted;
  let after = Option.get (Provstore.latest (Engine.provstore eng) coid) in
  Alcotest.(check int) "single seq step" (before.Record.seq_id + 1)
    after.Record.seq_id;
  Alcotest.(check bool) "input is pre-batch state" true
    (after.Record.input_hashes = [ before.Record.output_hash ]);
  Alcotest.(check bool) "value is final" true
    (after.Record.output_value = Some (Value.Int 3));
  Alcotest.(check bool) "verifies" true
    (Verifier.ok (ok (Engine.verify_object eng coid)))

let test_nested_complex_op_rejected () =
  let eng, alice, _, _ = setup () in
  match
    Engine.complex_op eng alice (fun () ->
        match Engine.complex_op eng alice (fun () -> Ok ()) with
        | Ok _ -> Ok ()
        | Error e -> Error e)
  with
  | Ok _ -> Alcotest.fail "nested accepted"
  | Error _ -> ()

let test_participant_mismatch_in_batch () =
  let eng, alice, bob, _ = setup () in
  match
    Engine.complex_op eng alice (fun () ->
        Engine.update_cell eng bob ~table:"t" ~row:0 ~col:0 (Value.Int 1))
  with
  | Ok _ -> Alcotest.fail "two participants in one op accepted"
  | Error _ -> ()

let test_aggregate_objects () =
  let eng, alice, bob, _ = setup () in
  ok (Engine.update_cell eng alice ~table:"t" ~row:0 ~col:0 (Value.Int 5));
  let r0 = Option.get (Tree_view.row_oid (Engine.mapping eng) "t" 0) in
  let r1 = Option.get (Tree_view.row_oid (Engine.mapping eng) "t" 1) in
  let agg = ok (Engine.aggregate_objects eng bob ~value:(Value.Text "agg") [ r0; r1 ]) in
  let rec_ = Option.get (Provstore.latest (Engine.provstore eng) agg) in
  Alcotest.(check string) "kind" "aggregate" (Record.kind_name rec_.Record.kind);
  Alcotest.(check int) "two inputs" 2 (List.length rec_.Record.input_oids);
  Alcotest.(check int) "two prevs" 2 (List.length rec_.Record.prev_checksums);
  (* aggregate is a root holding copies *)
  Alcotest.(check bool) "is root" true (Forest.parent (Engine.forest eng) agg = None);
  Alcotest.(check int) "copied row width" 2
    (List.length (Forest.children (Engine.forest eng) agg));
  (* originals untouched *)
  Alcotest.(check bool) "original intact" true (Forest.mem (Engine.forest eng) r0)

let test_object_ops () =
  let eng, alice, _, _ = setup () in
  let o = ok (Engine.insert_object eng alice (Value.Text "standalone")) in
  ok (Engine.update_object eng alice o (Value.Text "v2"));
  ok (Engine.delete_object eng alice o);
  Alcotest.(check bool) "gone" true (not (Forest.mem (Engine.forest eng) o))

let test_update_missing () =
  let eng, alice, _, _ = setup () in
  (match Engine.update_cell eng alice ~table:"t" ~row:99 ~col:0 (Value.Int 0) with
  | Ok () -> Alcotest.fail "missing row accepted"
  | Error _ -> ());
  (match Engine.update_cell eng alice ~table:"nope" ~row:0 ~col:0 (Value.Int 0) with
  | Ok () -> Alcotest.fail "missing table accepted"
  | Error _ -> ());
  match Engine.update_cell_named eng alice ~table:"t" ~row:0 ~column:"zz" (Value.Int 0) with
  | Ok () -> Alcotest.fail "missing column accepted"
  | Error _ -> ()

let test_create_table () =
  let eng, alice, _, _ = setup () in
  ok (Engine.create_table eng alice ~name:"t2" (Schema.all_int [ "x" ]));
  Alcotest.(check bool) "backend has it" true
    (Database.get_table (Engine.backend eng) "t2" <> None);
  Alcotest.(check bool) "tree has it" true
    (Tree_view.table_oid (Engine.mapping eng) "t2" <> None);
  let _ = ok (Engine.insert_row eng alice ~table:"t2" [| Value.Int 1 |]) in
  let report = ok (Engine.verify_object eng (Engine.root_oid eng)) in
  Alcotest.(check bool) "verifies" true (Verifier.ok report)

let test_basic_mode () =
  let drbg = Tep_crypto.Drbg.create ~seed:"basic-mode" in
  let ca = Tep_crypto.Pki.create_ca ~name:"CA" drbg in
  let dir = Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca) in
  let alice = Participant.create ~ca ~name:"alice" drbg in
  Participant.Directory.register dir alice;
  let db = Database.create ~name:"b" in
  let t = ok (Database.create_table db ~name:"t" (Schema.all_int [ "a" ])) in
  for i = 0 to 9 do
    ignore (Table.insert t [| Value.Int i |])
  done;
  let eng = Engine.create ~mode:Engine.Basic ~directory:dir db in
  ok (Engine.update_cell eng alice ~table:"t" ~row:0 ~col:0 (Value.Int 1));
  let m_basic = Engine.last_metrics eng in
  (* basic mode re-hashes the whole tree (22 nodes) at commit *)
  Alcotest.(check bool) "basic hashes everything" true
    (m_basic.Engine.nodes_hashed >= 22);
  Engine.set_mode eng Engine.Economical;
  ignore (Engine.root_hash eng);
  ok (Engine.update_cell eng alice ~table:"t" ~row:1 ~col:0 (Value.Int 1));
  let m_econ = Engine.last_metrics eng in
  Alcotest.(check bool) "economical hashes the path" true
    (m_econ.Engine.nodes_hashed < m_basic.Engine.nodes_hashed);
  (* both verify *)
  let report = ok (Engine.verify_object eng (Engine.root_oid eng)) in
  Alcotest.(check bool) "verifies" true (Verifier.ok report)

let test_metrics_accumulate () =
  let eng, alice, _, _ = setup () in
  ok (Engine.update_cell eng alice ~table:"t" ~row:0 ~col:0 (Value.Int 1));
  ok (Engine.update_cell eng alice ~table:"t" ~row:1 ~col:0 (Value.Int 1));
  let total = Engine.total_metrics eng in
  Alcotest.(check int) "total records" 8 total.Engine.records_emitted;
  Alcotest.(check bool) "times nonnegative" true
    (total.Engine.hash_s >= 0. && total.Engine.sign_s >= 0.)

let test_deep_delivery () =
  let eng, alice, bob, dir = setup () in
  ok (Engine.update_cell eng alice ~table:"t" ~row:0 ~col:0 (Value.Int 5));
  ok (Engine.update_cell eng bob ~table:"t" ~row:0 ~col:1 (Value.Int 6));
  let roid = Option.get (Tree_view.row_oid (Engine.mapping eng) "t" 0) in
  let _, shallow = ok (Engine.deliver eng roid) in
  let data, deep = ok (Engine.deliver ~deep:true eng roid) in
  (* shallow: the row's own 2-record chain; deep adds the two cells' chains *)
  Alcotest.(check int) "shallow" 2 (List.length shallow);
  Alcotest.(check bool) "deep strictly larger" true
    (List.length deep > List.length shallow);
  let report = Verifier.verify ~algo:(Engine.algo eng) ~directory:dir ~data deep in
  Alcotest.(check bool) "deep delivery verifies" true (Verifier.ok report)

let test_prune_after_deletes () =
  let eng, alice, _, dir = setup () in
  ok (Engine.update_cell eng alice ~table:"t" ~row:0 ~col:0 (Value.Int 1));
  ok (Engine.update_cell eng alice ~table:"t" ~row:1 ~col:0 (Value.Int 2));
  ok (Engine.delete_row eng alice ~table:"t" 0);
  let before = Provstore.record_count (Engine.provstore eng) in
  (* live = everything still in the forest *)
  let live = ref [] in
  Forest.iter_preorder (Engine.forest eng) (Engine.root_oid eng) (fun o _ ->
      live := o :: !live);
  let pruned = Provstore.prune (Engine.provstore eng) ~live:!live in
  Alcotest.(check bool) "records reclaimed" true
    (Provstore.record_count pruned < before);
  (* every survivor verifies against the pruned store *)
  List.iter
    (fun oid ->
      match Forest.subtree (Engine.forest eng) oid with
      | Error e -> Alcotest.fail e
      | Ok data ->
          let records = Provstore.provenance_object pruned oid in
          if records <> [] then begin
            let report =
              Verifier.verify ~algo:(Engine.algo eng) ~directory:dir ~data records
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s verifies after prune" (Oid.to_string oid))
              true (Verifier.ok report)
          end)
    !live

let test_wal_integration () =
  let drbg = Tep_crypto.Drbg.create ~seed:"wal-mode" in
  let ca = Tep_crypto.Pki.create_ca ~name:"CA" drbg in
  let dir = Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca) in
  let alice = Participant.create ~ca ~name:"alice" drbg in
  Participant.Directory.register dir alice;
  let db = Database.create ~name:"w" in
  ignore (ok (Database.create_table db ~name:"t" (Schema.all_int [ "a" ])));
  let wal = Wal.in_memory () in
  let eng = Engine.create ~wal ~directory:dir db in
  let row = ok (Engine.insert_row eng alice ~table:"t" [| Value.Int 5 |]) in
  ok (Engine.update_cell eng alice ~table:"t" ~row ~col:0 (Value.Int 6));
  ok (Engine.delete_row eng alice ~table:"t" row);
  Alcotest.(check int) "wal entries" 3
    (List.length (List.filter Wal.is_relational (Wal.entries wal)));
  (* each of the three singleton complex ops also journaled its
     provenance records and a commit marker *)
  Alcotest.(check int) "commit markers" 3
    (List.length
       (List.filter
          (function Wal.Commit _ -> true | _ -> false)
          (Wal.entries wal)));
  (* replaying onto an empty copy reproduces the backend *)
  let db2 = Database.create ~name:"w" in
  ignore (ok (Database.create_table db2 ~name:"t" (Schema.all_int [ "a" ])));
  ok (Wal.replay (Wal.entries wal) db2);
  Alcotest.(check int) "replayed rows" 0
    (Table.row_count (Database.get_table_exn db2 "t"))

(* Property: Basic and Economical modes produce identical root hashes
   for any op sequence, and both verify. *)
type prop_op = PUpd of int * int * int | PIns | PDel of int

let gen_prop_ops =
  QCheck2.Gen.(
    list_size (int_range 1 10)
      (oneof
         [
           map3 (fun r c v -> PUpd (r, c, v)) (int_range 0 5) (int_range 0 2)
             (int_range 0 999);
           return PIns;
           map (fun r -> PDel r) (int_range 0 5);
         ]))

let prop_modes_agree =
  QCheck2.Test.make ~name:"basic and economical agree" ~count:15 gen_prop_ops
    (fun ops ->
      let run mode =
        let drbg = Tep_crypto.Drbg.create ~seed:"modes" in
        let ca = Tep_crypto.Pki.create_ca ~bits:512 ~name:"CA" drbg in
        let dir =
          Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
        in
        let p = Participant.create ~bits:512 ~ca ~name:"p" drbg in
        Participant.Directory.register dir p;
        let db = Database.create ~name:"m" in
        let t = ok (Database.create_table db ~name:"t" (Schema.all_int [ "a"; "b"; "c" ])) in
        for i = 0 to 5 do
          ignore (Table.insert t [| Value.Int i; Value.Int i; Value.Int i |])
        done;
        let eng = Engine.create ~mode ~directory:dir db in
        List.iter
          (fun op ->
            match op with
            | PUpd (r, c, v) ->
                ignore (Engine.update_cell eng p ~table:"t" ~row:r ~col:c (Value.Int v))
            | PIns -> ignore (Engine.insert_row eng p ~table:"t" [| Value.Int 0; Value.Int 0; Value.Int 0 |])
            | PDel r -> ignore (Engine.delete_row eng p ~table:"t" r))
          ops;
        let h = Engine.root_hash eng in
        let report = ok (Engine.verify_object eng (Engine.root_oid eng)) in
        (h, Verifier.ok report)
      in
      let hb, okb = run Engine.Basic in
      let he, oke = run Engine.Economical in
      String.equal hb he && okb && oke)

let () =
  Alcotest.run "engine"
    [
      ( "records",
        [
          Alcotest.test_case "update cell" `Quick test_update_cell_records;
          Alcotest.test_case "first touch import" `Quick
            test_first_touch_is_import;
          Alcotest.test_case "insert row" `Quick test_insert_row_records;
          Alcotest.test_case "delete row" `Quick test_delete_row_records;
          Alcotest.test_case "aggregate" `Quick test_aggregate_objects;
          Alcotest.test_case "object ops" `Quick test_object_ops;
        ] );
      ( "complex-ops",
        [
          Alcotest.test_case "batching" `Quick test_complex_op_batching;
          Alcotest.test_case "double update collapses" `Quick
            test_double_update_in_batch;
          Alcotest.test_case "failure atomicity" `Quick
            test_complex_op_failure_emits_nothing;
          Alcotest.test_case "nested rejected" `Quick
            test_nested_complex_op_rejected;
          Alcotest.test_case "participant mismatch" `Quick
            test_participant_mismatch_in_batch;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_modes_agree ]);
      ( "engine",
        [
          Alcotest.test_case "update missing" `Quick test_update_missing;
          Alcotest.test_case "create table" `Quick test_create_table;
          Alcotest.test_case "basic vs economical" `Quick test_basic_mode;
          Alcotest.test_case "metrics accumulate" `Quick
            test_metrics_accumulate;
          Alcotest.test_case "wal integration" `Quick test_wal_integration;
          Alcotest.test_case "deep delivery" `Quick test_deep_delivery;
          Alcotest.test_case "prune after deletes" `Quick
            test_prune_after_deletes;
        ] );
    ]
