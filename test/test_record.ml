(* Provenance record codec and helpers. *)
open Tep_store
open Tep_tree
open Tep_core

let sample kind =
  {
    Record.seq_id = 3;
    participant = "alice";
    kind;
    inherited = kind = Record.Update;
    input_oids = [ Oid.of_int 1; Oid.of_int 2 ];
    input_hashes = [ "hash-one"; "hash-two" ];
    output_oid = Oid.of_int 7;
    output_hash = "out-hash";
    output_value = Some (Value.Int 42);
    prev_checksums = [ "prev-a"; "prev-b" ];
    checksum = String.make 128 '\x5a';
  }

let all_kinds = [ Record.Insert; Record.Import; Record.Update; Record.Aggregate ]

let test_codec_roundtrip () =
  List.iter
    (fun kind ->
      let r = sample kind in
      let enc = Record.encoded r in
      let r', off = Record.decode enc 0 in
      Alcotest.(check int) "consumed" (String.length enc) off;
      Alcotest.(check string) "stable" enc (Record.encoded r'))
    all_kinds

let test_codec_no_value () =
  let r = { (sample Record.Update) with Record.output_value = None } in
  let r', _ = Record.decode (Record.encoded r) 0 in
  Alcotest.(check bool) "none preserved" true (r'.Record.output_value = None)

let test_codec_empty_lists () =
  let r =
    {
      (sample Record.Insert) with
      Record.input_oids = [];
      input_hashes = [];
      prev_checksums = [];
    }
  in
  let r', _ = Record.decode (Record.encoded r) 0 in
  Alcotest.(check int) "no inputs" 0 (List.length r'.Record.input_hashes)

let test_decode_garbage () =
  (try
     ignore (Record.decode "garbage" 0);
     Alcotest.fail "garbage accepted"
   with Failure _ -> ());
  try
    ignore (Record.decode (String.sub (Record.encoded (sample Record.Update)) 0 10) 0);
    Alcotest.fail "truncation accepted"
  with Failure _ -> ()

let test_compare_seq () =
  let a = { (sample Record.Update) with Record.seq_id = 1 } in
  let b = { (sample Record.Update) with Record.seq_id = 2 } in
  Alcotest.(check bool) "order" true (Record.compare_seq a b < 0);
  let c = { a with Record.output_oid = Oid.of_int 99 } in
  Alcotest.(check bool) "tie by oid" true (Record.compare_seq a c < 0)

let test_kind_names () =
  Alcotest.(check (list string)) "names"
    [ "insert"; "import"; "update"; "aggregate" ]
    (List.map Record.kind_name all_kinds)

let test_checksum_hex () =
  Alcotest.(check int) "12 chars" 12 (String.length (Record.checksum_hex (sample Record.Update)))

let test_pp () =
  let s = Format.asprintf "%a" Record.pp (sample Record.Aggregate) in
  let contains sub =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "participant" true (contains "alice");
  Alcotest.(check bool) "kind" true (contains "aggregate");
  Alcotest.(check bool) "seq" true (contains "seq 3")

let () =
  Alcotest.run "record"
    [
      ( "unit",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "codec no value" `Quick test_codec_no_value;
          Alcotest.test_case "codec empty lists" `Quick test_codec_empty_lists;
          Alcotest.test_case "decode garbage" `Quick test_decode_garbage;
          Alcotest.test_case "compare_seq" `Quick test_compare_seq;
          Alcotest.test_case "kind names" `Quick test_kind_names;
          Alcotest.test_case "checksum hex" `Quick test_checksum_hex;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
    ]
