(* The lineage engine: semirings, provenance polynomials, annotated
   query evaluation with pruning, lineage queries over the DAG, and
   signed annotations (tamper detection). *)
open Tep_store
open Tep_tree
open Tep_core
open Tep_prov

let ok = function Ok v -> v | Error e -> Alcotest.fail e
let qtest = QCheck_alcotest.to_alcotest

let poly =
  Alcotest.testable
    (fun fmt p -> Format.pp_print_string fmt (Polynomial.to_string p))
    Polynomial.equal

(* ------------------------------------------------------------------ *)
(* Semirings                                                           *)
(* ------------------------------------------------------------------ *)

let test_semiring_laws () =
  let check (type a) (module S : Semiring.S with type t = a) samples =
    List.iter
      (fun x ->
        Alcotest.(check bool) "0 + x = x" true (S.equal (S.plus S.zero x) x);
        Alcotest.(check bool) "1 * x = x" true (S.equal (S.times S.one x) x);
        Alcotest.(check bool) "0 * x = 0" true
          (S.equal (S.times S.zero x) S.zero);
        List.iter
          (fun y ->
            Alcotest.(check bool) "+ commutes" true
              (S.equal (S.plus x y) (S.plus y x));
            Alcotest.(check bool) "* commutes" true
              (S.equal (S.times x y) (S.times y x)))
          samples)
      samples
  in
  check (module Semiring.Counting) [ 0; 1; 2; 7 ];
  check (module Semiring.Boolean) [ false; true ];
  check (module Semiring.Tropical) [ 0; 1; 5; Semiring.Tropical.inf ]

let test_tropical_saturates () =
  let open Semiring.Tropical in
  Alcotest.(check int) "inf + cost saturates" inf (times inf 3);
  Alcotest.(check int) "min picks the cheap path" 3 (plus 3 7)

(* ------------------------------------------------------------------ *)
(* Polynomials                                                         *)
(* ------------------------------------------------------------------ *)

let x n = Polynomial.var n

let test_poly_algebra () =
  let open Polynomial in
  Alcotest.check poly "x+y = y+x" (plus (x 1) (x 2)) (plus (x 2) (x 1));
  Alcotest.check poly "x*y = y*x" (times (x 1) (x 2)) (times (x 2) (x 1));
  Alcotest.check poly "distributes"
    (times (x 1) (plus (x 2) (x 3)))
    (plus (times (x 1) (x 2)) (times (x 1) (x 3)));
  Alcotest.check poly "collects like terms"
    (times (of_const 2) (x 1))
    (plus (x 1) (x 1));
  Alcotest.check poly "powers" (product [ x 1; x 1; x 1 ])
    (times (x 1) (times (x 1) (x 1)));
  Alcotest.(check bool) "zero annihilates" true
    (is_zero (times zero (plus (x 1) (x 2))));
  Alcotest.(check bool) "one is neutral" true
    (equal (times one (x 4)) (x 4));
  Alcotest.(check (list int)) "vars sorted" [ 1; 2; 3 ]
    (vars (plus (times (x 3) (x 1)) (x 2)));
  Alcotest.(check int) "degree" 3
    (degree (plus (times (x 1) (times (x 2) (x 3))) (x 9)));
  Alcotest.(check int) "degree of zero" (-1) (degree zero)

let test_poly_eval () =
  (* 2*x1*x2 + x3^2 under each semiring *)
  let p =
    Polynomial.(
      plus
        (times (of_const 2) (times (x 1) (x 2)))
        (times (x 3) (x 3)))
  in
  Alcotest.(check int) "counting" ((2 * 3 * 4) + (5 * 5))
    (Polynomial.count (function 1 -> 3 | 2 -> 4 | _ -> 5) p);
  Alcotest.(check bool) "boolean holds via x3" true
    (Polynomial.holds (fun v -> v = 3) p);
  Alcotest.(check bool) "boolean fails without x2" false
    (Polynomial.holds (fun v -> v = 1) p);
  (* cheapest derivation: x3^2 uses 2 base objects, x1*x2 also 2 *)
  Alcotest.(check int) "min support" 2 (Polynomial.min_support p);
  Alcotest.(check int) "tropical exponents add costs" 2
    (Polynomial.eval
       (module Semiring.Tropical)
       (fun _ -> 1)
       (Polynomial.times (x 1) (x 1)))

let test_poly_render () =
  let p =
    Polynomial.(plus (times (x 2) (x 5)) (times (of_const 2) (times (x 7) (x 7))))
  in
  Alcotest.(check string) "graded order, powers" "x2*x5 + 2*x7^2"
    (Polynomial.to_string p);
  Alcotest.(check string) "zero" "0" (Polynomial.to_string Polynomial.zero);
  Alcotest.(check string) "named" "o2*o5 + 2*o7^2"
    (Lineage.poly_to_string p)

let gen_poly =
  QCheck2.Gen.(
    let gen_atom =
      oneof
        [
          map x (int_range 0 50);
          map Polynomial.of_const (int_range 0 5);
        ]
    in
    (* small trees only: [times] over sums multiplies term counts, so
       unbounded nesting would build astronomically large normal forms *)
    sized_size (int_range 0 8)
    @@ fix (fun self n ->
           if n <= 0 then gen_atom
           else
             oneof
               [
                 gen_atom;
                 map2 Polynomial.plus (self (n / 2)) (self (n / 2));
                 map2 Polynomial.times (self (n / 2)) (self (n / 2));
               ]))

let prop_poly_codec =
  QCheck2.Test.make ~name:"decode (encode p) = p, all bytes consumed"
    ~count:500 gen_poly (fun p ->
      let s = Polynomial.encoded p in
      let p', off = Polynomial.decode s 0 in
      off = String.length s && Polynomial.equal p p')

let test_poly_decode_rejects () =
  let s = Polynomial.encoded Polynomial.(times (x 1) (plus (x 2) (x 3))) in
  for cut = 0 to String.length s - 1 do
    match Polynomial.decode (String.sub s 0 cut) 0 with
    | exception Failure _ -> ()
    | exception Invalid_argument _ -> ()
    | p', off ->
        (* a shorter valid encoding may embed as a prefix, but it must
           never claim the full length or reproduce the original *)
        if off = String.length s then
          Alcotest.failf "truncation to %d bytes consumed the full length" cut;
        if Polynomial.equal p'
             Polynomial.(times (x 1) (plus (x 2) (x 3)))
        then Alcotest.failf "truncation to %d bytes decoded the original" cut
  done

(* ------------------------------------------------------------------ *)
(* Annotated evaluation + pruning                                      *)
(* ------------------------------------------------------------------ *)

let mk_table () =
  let schema =
    Schema.make
      [
        { Schema.name = "sku"; ty = Value.TText; nullable = false };
        { Schema.name = "qty"; ty = Value.TInt; nullable = true };
      ]
  in
  let t = Table.create ~name:"stock" schema in
  List.iter
    (fun (s, q) ->
      ignore
        (Table.insert t
           [|
             Value.Text s;
             (match q with Some q -> Value.Int q | None -> Value.Null);
           |]))
    [ ("a", Some 100); ("b", Some 7); ("c", None); ("d", Some 50) ];
  t

let test_annotated_select_matches_plain () =
  let t = mk_table () in
  let pred = Query.Cmp ("qty", Query.Gt, Value.Int 10) in
  let plain = ok (Query.select t pred) in
  let annotated = ok (Annotate.select t pred) in
  Alcotest.(check (list int)) "same rows, same order"
    (List.map (fun (r : Table.row) -> r.Table.id) plain)
    (List.map (fun ((r : Table.row), _) -> r.Table.id) annotated);
  List.iter
    (fun ((r : Table.row), p) ->
      Alcotest.check poly "row var" (x r.Table.id) p)
    annotated

let test_annotated_count_and_agg () =
  let t = mk_table () in
  let pred = Query.Cmp ("qty", Query.Gt, Value.Int 10) in
  let n, cp = ok (Annotate.count t pred) in
  Alcotest.(check int) "count" 2 n;
  (* each row is an alternative derivation of the tally *)
  Alcotest.check poly "count = sum of rows" Polynomial.(plus (x 0) (x 3)) cp;
  let v, ap = ok (Annotate.aggregate t pred (Query.Sum "qty")) in
  Alcotest.(check bool) "sum value" true (v = Value.Int 150);
  (* a value aggregate uses all its inputs jointly *)
  Alcotest.check poly "sum uses all rows" Polynomial.(times (x 0) (x 3)) ap

let test_pruning () =
  let t = mk_table () in
  let contradiction =
    Query.And
      ( Query.Cmp ("sku", Query.Eq, Value.Text "a"),
        Query.Cmp ("sku", Query.Eq, Value.Text "b") )
  in
  Alcotest.(check bool) "contradiction detected" true
    (Annotate.never_matches contradiction);
  Alcotest.(check bool) "null never compares" true
    (Annotate.never_matches
       (Query.And (Query.IsNull "qty", Query.Cmp ("qty", Query.Gt, Value.Int 0))));
  Alcotest.(check bool) "double negation survives" true
    (Annotate.simplify (Query.Not (Query.Not Query.True)) = Query.True);
  Annotate.reset_pruned_scans ();
  let rows = ok (Annotate.select t contradiction) in
  Alcotest.(check int) "no rows" 0 (List.length rows);
  Alcotest.(check int) "scan skipped" 1 (Annotate.pruned_scans ());
  (* pruning must not reject satisfiable predicates *)
  Alcotest.(check int) "or of contradictions keeps the live arm" 1
    (List.length
       (ok
          (Annotate.select t
             (Query.Or (contradiction, Query.Cmp ("sku", Query.Eq, Value.Text "a"))))))

(* ------------------------------------------------------------------ *)
(* Lineage over an engine                                              *)
(* ------------------------------------------------------------------ *)

let fixture () =
  let drbg = Tep_crypto.Drbg.create ~seed:"test-prov" in
  let ca = Tep_crypto.Pki.create_ca ~bits:512 ~name:"CA" drbg in
  let dir =
    Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
  in
  let alice = Participant.create ~bits:512 ~ca ~name:"alice" drbg in
  Participant.Directory.register dir alice;
  let db = Database.create ~name:"p" in
  ignore (ok (Database.create_table db ~name:"t" (Schema.all_int [ "a" ])));
  let eng = Engine.create ~directory:dir db in
  let r0 = ok (Engine.insert_row eng alice ~table:"t" [| Value.Int 1 |]) in
  let r1 = ok (Engine.insert_row eng alice ~table:"t" [| Value.Int 2 |]) in
  let row0 = Option.get (Tree_view.row_oid (Engine.mapping eng) "t" r0) in
  let row1 = Option.get (Tree_view.row_oid (Engine.mapping eng) "t" r1) in
  let agg =
    ok
      (Engine.aggregate_objects eng alice ~value:(Value.Text "agg")
         [ row0; row1 ])
  in
  let agg2 =
    ok (Engine.aggregate_objects eng alice ~value:(Value.Text "agg2") [ agg ])
  in
  (eng, dir, alice, row0, row1, agg, agg2)

let test_lineage_why () =
  let eng, _, _, row0, row1, agg, agg2 = fixture () in
  let idx = Prov_index.of_store (Engine.provstore eng) in
  let v o = x (Oid.to_int o) in
  Alcotest.check poly "base object is its own variable" (v row0)
    (Lineage.why idx row0);
  Alcotest.check poly "aggregate multiplies its inputs"
    (Polynomial.times (v row0) (v row1))
    (Lineage.why idx agg);
  Alcotest.check poly "nested aggregate expands transitively"
    (Polynomial.times (v row0) (v row1))
    (Lineage.why idx agg2);
  Alcotest.(check (list int)) "which_inputs"
    (List.sort compare [ Oid.to_int row0; Oid.to_int row1 ])
    (List.map Oid.to_int (Lineage.which_inputs idx agg2));
  Alcotest.(check int) "depth of base" 0 (Lineage.depth idx row0);
  Alcotest.(check int) "depth of agg2" 2 (Lineage.depth idx agg2);
  Alcotest.(check int) "min support" 2 (Lineage.min_support idx agg2);
  Alcotest.(check bool) "impact of row0 reaches agg2" true
    (List.exists (Oid.equal agg2) (Lineage.impact idx row0))

(* why on a 10k-deep unsigned chain: the memoised index keeps it
   linear, and the polynomial collapses to the sole base variable *)
let test_lineage_deep_chain () =
  let n = 10_000 in
  let store = Provstore.create () in
  let ck i = "c" ^ string_of_int i in
  Provstore.append store
    {
      Record.seq_id = 0;
      participant = "p";
      kind = Record.Insert;
      inherited = false;
      input_oids = [];
      input_hashes = [];
      output_oid = Oid.of_int 0;
      output_hash = "h";
      output_value = None;
      prev_checksums = [];
      checksum = ck 0;
    };
  for i = 1 to n do
    Provstore.append store
      {
        Record.seq_id = i;
        participant = "p";
        kind = Record.Aggregate;
        inherited = false;
        input_oids = [ Oid.of_int (i - 1) ];
        input_hashes = [ "h" ];
        output_oid = Oid.of_int i;
        output_hash = "h";
        output_value = None;
        prev_checksums = [ ck (i - 1) ];
        checksum = ck i;
      }
  done;
  let idx = Prov_index.of_store store in
  let t0 = Unix.gettimeofday () in
  Alcotest.check poly "why collapses to the base" (x 0)
    (Lineage.why idx (Oid.of_int n));
  Alcotest.(check int) "depth" n (Lineage.depth idx (Oid.of_int n));
  let elapsed = Unix.gettimeofday () -. t0 in
  if elapsed >= 5.0 then
    Alcotest.failf "deep-chain why took %.2fs (expected well under 5s)" elapsed

(* ------------------------------------------------------------------ *)
(* Signed annotations                                                  *)
(* ------------------------------------------------------------------ *)

let sample_annot alice root =
  Annot.make ~id:"audit1" ~table:"t" ~pred:"a > 0" ~agg:"sum(a)"
    ~rows:[ (2, x 2); (5, Polynomial.times (x 5) (x 5)) ]
    ~value:(Some (Value.Int 3)) ~root alice

let test_annot_verify_roundtrip () =
  let eng, dir, alice, _, _, _, _ = fixture () in
  let a = sample_annot alice (Engine.root_hash eng) in
  ok (Annot.verify dir a);
  (* file-format roundtrip preserves verifiability *)
  let s = Annot.list_to_string [ a; a ] in
  let l = ok (Annot.list_of_string s) in
  Alcotest.(check int) "both entries back" 2 (List.length l);
  List.iter (fun a -> ok (Annot.verify dir a)) l

let test_annot_tamper_detected () =
  let eng, dir, alice, _, _, _, _ = fixture () in
  let a = sample_annot alice (Engine.root_hash eng) in
  (* any field edit breaks the signature: the payload is recomputed *)
  let edits =
    [
      { a with Annot.a_table = "u" };
      { a with Annot.a_pred = "a > 1" };
      { a with Annot.a_agg = "" };
      { a with Annot.a_rows = [ (2, x 2) ] };
      { a with Annot.a_rows = [ (2, x 3); (5, Polynomial.times (x 5) (x 5)) ] };
      { a with Annot.a_value = None };
      { a with Annot.a_root = String.make 20 '\x00' };
      { a with Annot.a_participant = "bob" };
    ]
  in
  List.iter
    (fun bad ->
      match Annot.verify dir bad with
      | Ok () -> Alcotest.fail "edited annotation verified"
      | Error _ -> ())
    edits;
  (* every single-byte flip of the stored form must fail to parse or
     fail to verify *)
  let s = Annot.list_to_string [ a ] in
  let flips = [ 0; String.length s / 2; String.length s - 1 ] in
  List.iter
    (fun i ->
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      match Annot.list_of_string (Bytes.to_string b) with
      | Error _ -> ()
      | Ok l -> (
          match List.find_opt (fun a -> Annot.verify dir a <> Ok ()) l with
          | Some _ -> ()
          | None -> Alcotest.failf "flip at byte %d went undetected" i))
    flips

let test_annot_unknown_participant () =
  let eng, _, alice, _, _, _, _ = fixture () in
  let drbg = Tep_crypto.Drbg.create ~seed:"other-ca" in
  let other_ca = Tep_crypto.Pki.create_ca ~bits:512 ~name:"Other" drbg in
  let foreign_dir =
    Participant.Directory.create
      ~ca_key:(Tep_crypto.Pki.ca_public_key other_ca)
  in
  let a = sample_annot alice (Engine.root_hash eng) in
  match Annot.verify foreign_dir a with
  | Ok () -> Alcotest.fail "foreign directory accepted the annotation"
  | Error _ -> ()

let () =
  Alcotest.run "prov"
    [
      ( "semiring",
        [
          Alcotest.test_case "laws" `Quick test_semiring_laws;
          Alcotest.test_case "tropical" `Quick test_tropical_saturates;
        ] );
      ( "polynomial",
        [
          Alcotest.test_case "algebra" `Quick test_poly_algebra;
          Alcotest.test_case "eval" `Quick test_poly_eval;
          Alcotest.test_case "render" `Quick test_poly_render;
          Alcotest.test_case "decode rejects" `Quick test_poly_decode_rejects;
          qtest prop_poly_codec;
        ] );
      ( "annotate",
        [
          Alcotest.test_case "select matches plain" `Quick
            test_annotated_select_matches_plain;
          Alcotest.test_case "count & aggregate" `Quick
            test_annotated_count_and_agg;
          Alcotest.test_case "pruning" `Quick test_pruning;
        ] );
      ( "lineage",
        [
          Alcotest.test_case "why & friends" `Quick test_lineage_why;
          Alcotest.test_case "10k deep chain" `Quick test_lineage_deep_chain;
        ] );
      ( "annot",
        [
          Alcotest.test_case "sign & verify" `Quick test_annot_verify_roundtrip;
          Alcotest.test_case "tampering detected" `Quick
            test_annot_tamper_detected;
          Alcotest.test_case "foreign directory" `Quick
            test_annot_unknown_participant;
        ] );
    ]
