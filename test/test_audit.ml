(* Incremental auditing: checkpoints, boundary links, cost
   proportionality, tamper detection at and after the boundary. *)
open Tep_store
open Tep_tree
open Tep_core

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let fixture () =
  let drbg = Tep_crypto.Drbg.create ~seed:"test-audit" in
  let ca = Tep_crypto.Pki.create_ca ~name:"CA" drbg in
  let dir = Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca) in
  let alice = Participant.create ~bits:512 ~ca ~name:"alice" drbg in
  Participant.Directory.register dir alice;
  let db = Database.create ~name:"a" in
  ignore (ok (Database.create_table db ~name:"t" (Schema.all_int [ "a"; "b" ])));
  let eng = Engine.create ~directory:dir db in
  for _ = 1 to 3 do
    ignore (ok (Engine.insert_row eng alice ~table:"t" [| Value.Int 0; Value.Int 0 |]))
  done;
  (eng, alice, dir)

let audit eng dir cp =
  Audit.incremental_audit ~algo:(Engine.algo eng) ~directory:dir cp
    (Engine.provstore eng)

let test_full_audit_clean () =
  let eng, _, dir = fixture () in
  let report, cp =
    Audit.full_audit ~algo:(Engine.algo eng) ~directory:dir
      (Engine.provstore eng)
  in
  Alcotest.(check bool) "clean" true (Verifier.ok report);
  Alcotest.(check int) "all objects checkpointed"
    (Provstore.object_count (Engine.provstore eng))
    (Audit.objects cp)

let test_incremental_cost () =
  let eng, alice, dir = fixture () in
  let _, cp = Audit.full_audit ~algo:(Engine.algo eng) ~directory:dir (Engine.provstore eng) in
  (* no new work -> zero records examined *)
  let report, cp, examined = audit eng dir cp in
  Alcotest.(check bool) "clean" true (Verifier.ok report);
  Alcotest.(check int) "nothing re-examined" 0 examined;
  (* one update -> examine exactly its 4 records *)
  ok (Engine.update_cell eng alice ~table:"t" ~row:0 ~col:0 (Value.Int 7));
  let report, cp, examined = audit eng dir cp in
  Alcotest.(check bool) "clean" true (Verifier.ok report);
  Alcotest.(check int) "only the delta" 4 examined;
  (* and the next round is zero again *)
  let _, _, examined = audit eng dir cp in
  Alcotest.(check int) "zero again" 0 examined

let test_checkpoint_roundtrip () =
  let eng, alice, dir = fixture () in
  let _, cp = Audit.full_audit ~algo:(Engine.algo eng) ~directory:dir (Engine.provstore eng) in
  let cp' = ok (Audit.of_string (Audit.to_string cp)) in
  Alcotest.(check int) "objects preserved" (Audit.objects cp) (Audit.objects cp');
  ok (Engine.update_cell eng alice ~table:"t" ~row:1 ~col:1 (Value.Int 9));
  let report, _, examined = audit eng dir cp' in
  Alcotest.(check bool) "resumed checkpoint works" true (Verifier.ok report);
  Alcotest.(check int) "delta only" 4 examined;
  match Audit.of_string "garbage" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

let test_mark_accessor () =
  let eng, _, dir = fixture () in
  let _, cp = Audit.full_audit ~algo:(Engine.algo eng) ~directory:dir (Engine.provstore eng) in
  let root = Engine.root_oid eng in
  match Audit.mark cp root with
  | Some (seq, _) ->
      let latest = Option.get (Provstore.latest (Engine.provstore eng) root) in
      Alcotest.(check int) "marks latest" latest.Record.seq_id seq
  | None -> Alcotest.fail "root not marked"

(* An attacker who rewrites history BEFORE the checkpoint and re-chains
   everything after it still fails: the first post-checkpoint record no
   longer chains onto the audited checksum. *)
let test_pre_checkpoint_rewrite_detected () =
  let eng, alice, dir = fixture () in
  ok (Engine.update_cell eng alice ~table:"t" ~row:0 ~col:0 (Value.Int 1));
  let _, cp = Audit.full_audit ~algo:(Engine.algo eng) ~directory:dir (Engine.provstore eng) in
  ok (Engine.update_cell eng alice ~table:"t" ~row:0 ~col:0 (Value.Int 2));
  (* simulate a store whose history diverges below the checkpoint: an
     attacker (with alice's key!) rebuilt the cell chain from scratch *)
  let cell = Option.get (Tree_view.cell_oid (Engine.mapping eng) "t" 0 0) in
  let rebuilt = Provstore.create ~algo:(Engine.algo eng) () in
  List.iter
    (fun (r : Record.t) ->
      if not (Oid.equal r.Record.output_oid cell) then Provstore.append rebuilt r)
    (Provstore.all (Engine.provstore eng));
  (* forge a fresh 1-record chain for the cell, properly signed *)
  let h = Tep_crypto.Digest_algo.digest (Engine.algo eng) "fake state" in
  let payload =
    Checksum.payload ~kind:Record.Import ~seq_id:0 ~output_oid:cell
      ~input_hashes:[ h ] ~output_hash:h ~prev_checksums:[]
  in
  Provstore.append rebuilt
    {
      Record.seq_id = 0;
      participant = "alice";
      kind = Record.Import;
      inherited = false;
      input_oids = [ cell ];
      input_hashes = [ h ];
      output_oid = cell;
      output_hash = h;
      output_value = None;
      prev_checksums = [];
      checksum = Checksum.sign alice payload;
    };
  let report, _, _ =
    Audit.incremental_audit ~algo:(Engine.algo eng) ~directory:dir cp rebuilt
  in
  (* the rebuilt chain is internally consistent, but the auditor's
     checkpoint says the cell was at seq >= 1 with a different
     checksum: regression detected *)
  Alcotest.(check bool) "rewrite detected" false (Verifier.ok report)

let test_post_checkpoint_tamper_detected () =
  let eng, alice, dir = fixture () in
  let _, cp = Audit.full_audit ~algo:(Engine.algo eng) ~directory:dir (Engine.provstore eng) in
  ok (Engine.update_cell eng alice ~table:"t" ~row:0 ~col:0 (Value.Int 1));
  (* tamper with a NEW record: copy the store, flip a hash *)
  let tampered = Provstore.create ~algo:(Engine.algo eng) () in
  let cell = Option.get (Tree_view.cell_oid (Engine.mapping eng) "t" 0 0) in
  List.iter
    (fun (r : Record.t) ->
      let r =
        if Oid.equal r.Record.output_oid cell && r.Record.seq_id = 1 then
          { r with Record.output_hash = "evil" }
        else r
      in
      Provstore.append tampered r)
    (Provstore.all (Engine.provstore eng));
  let report, _, _ =
    Audit.incremental_audit ~algo:(Engine.algo eng) ~directory:dir cp tampered
  in
  Alcotest.(check bool) "detected" false (Verifier.ok report)

let test_checkpoint_not_advanced_on_failure () =
  let eng, alice, dir = fixture () in
  let _, cp0 = Audit.full_audit ~algo:(Engine.algo eng) ~directory:dir (Engine.provstore eng) in
  ok (Engine.update_cell eng alice ~table:"t" ~row:0 ~col:0 (Value.Int 1));
  let cell = Option.get (Tree_view.cell_oid (Engine.mapping eng) "t" 0 0) in
  let tampered = Provstore.create ~algo:(Engine.algo eng) () in
  List.iter
    (fun (r : Record.t) ->
      let r =
        if Oid.equal r.Record.output_oid cell && r.Record.seq_id = 1 then
          { r with Record.output_hash = "evil" }
        else r
      in
      Provstore.append tampered r)
    (Provstore.all (Engine.provstore eng));
  let _, cp1, _ =
    Audit.incremental_audit ~algo:(Engine.algo eng) ~directory:dir cp0 tampered
  in
  (* the tampered object's mark must not move past the checkpoint *)
  Alcotest.(check bool) "mark frozen" true
    (Audit.mark cp1 cell = Audit.mark cp0 cell)

let test_aggregate_across_checkpoint () =
  let eng, alice, dir = fixture () in
  let _, cp = Audit.full_audit ~algo:(Engine.algo eng) ~directory:dir (Engine.provstore eng) in
  (* aggregate two rows AFTER the checkpoint: the new aggregate record
     cites pre-checkpoint records of other objects *)
  let r0 = Option.get (Tree_view.row_oid (Engine.mapping eng) "t" 0) in
  let r1 = Option.get (Tree_view.row_oid (Engine.mapping eng) "t" 1) in
  let _agg = ok (Engine.aggregate_objects eng alice [ r0; r1 ]) in
  let report, cp, examined = audit eng dir cp in
  Alcotest.(check bool) "clean" true (Verifier.ok report);
  Alcotest.(check bool) "only the aggregate examined" true (examined <= 2);
  ignore cp

(* Parallel audits must produce the identical report AND the identical
   checkpoint (compared via its serialised form) as the sequential
   sweep, for both full and incremental audits, clean or tampered. *)
let test_parallel_matches_sequential () =
  let eng, alice, dir = fixture () in
  let algo = Engine.algo eng in
  for i = 0 to 9 do
    ok (Engine.update_cell eng alice ~table:"t" ~row:(i mod 3) ~col:(i mod 2)
          (Value.Int i))
  done;
  let store = Engine.provstore eng in
  (* a mid-history checkpoint so the incremental pass has real deltas *)
  let _, cp0 = Audit.full_audit ~algo ~directory:dir store in
  ok (Engine.update_cell eng alice ~table:"t" ~row:0 ~col:0 (Value.Int 999));
  let seq_report, seq_cp = Audit.full_audit ~algo ~directory:dir store in
  let seq_ireport, seq_icp, seq_examined =
    Audit.incremental_audit ~algo ~directory:dir cp0 store
  in
  (* tampered store for the failure path *)
  let cell = Option.get (Tree_view.cell_oid (Engine.mapping eng) "t" 0 0) in
  let tampered = Provstore.create ~algo () in
  List.iter
    (fun (r : Record.t) ->
      let r =
        if Oid.equal r.Record.output_oid cell && r.Record.seq_id = 1 then
          { r with Record.output_hash = "evil" }
        else r
      in
      Provstore.append tampered r)
    (Provstore.all store);
  let seq_treport, seq_tcp = Audit.full_audit ~algo ~directory:dir tampered in
  Alcotest.(check bool) "tampered baseline fails" false (Verifier.ok seq_treport);
  List.iter
    (fun domains ->
      let pool = Tep_parallel.Pool.create ~domains () in
      let name fmt = Printf.sprintf fmt domains in
      let report, cp = Audit.full_audit ~pool ~algo ~directory:dir store in
      Alcotest.(check bool) (name "full report @%d") true (report = seq_report);
      Alcotest.(check string)
        (name "full checkpoint @%d")
        (Audit.to_string seq_cp) (Audit.to_string cp);
      let ireport, icp, examined =
        Audit.incremental_audit ~pool ~algo ~directory:dir cp0 store
      in
      Alcotest.(check bool) (name "incr report @%d") true (ireport = seq_ireport);
      Alcotest.(check int) (name "incr examined @%d") seq_examined examined;
      Alcotest.(check string)
        (name "incr checkpoint @%d")
        (Audit.to_string seq_icp) (Audit.to_string icp);
      let treport, tcp = Audit.full_audit ~pool ~algo ~directory:dir tampered in
      Alcotest.(check bool) (name "tampered report @%d") true (treport = seq_treport);
      Alcotest.(check string)
        (name "tampered checkpoint @%d")
        (Audit.to_string seq_tcp) (Audit.to_string tcp);
      Tep_parallel.Pool.shutdown pool)
    [ 1; 2; 4 ]

let () =
  Alcotest.run "audit"
    [
      ( "unit",
        [
          Alcotest.test_case "full audit" `Quick test_full_audit_clean;
          Alcotest.test_case "incremental cost" `Quick test_incremental_cost;
          Alcotest.test_case "checkpoint roundtrip" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "mark accessor" `Quick test_mark_accessor;
          Alcotest.test_case "pre-checkpoint rewrite" `Quick
            test_pre_checkpoint_rewrite_detected;
          Alcotest.test_case "post-checkpoint tamper" `Quick
            test_post_checkpoint_tamper_detected;
          Alcotest.test_case "checkpoint frozen on failure" `Quick
            test_checkpoint_not_advanced_on_failure;
          Alcotest.test_case "aggregate across checkpoint" `Quick
            test_aggregate_across_checkpoint;
          Alcotest.test_case "parallel matches sequential" `Quick
            test_parallel_matches_sequential;
        ] );
    ]
