(* The Section-3 atomic protocol, including the exact Figure 2/3
   worked example. *)
open Tep_store
open Tep_tree
open Tep_core

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let env () =
  let drbg = Tep_crypto.Drbg.create ~seed:"test-atomic" in
  let ca = Tep_crypto.Pki.create_ca ~name:"CA" drbg in
  let dir = Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca) in
  let p name =
    let p = Participant.create ~ca ~name drbg in
    Participant.Directory.register dir p;
    p
  in
  (dir, p)

let test_insert_update_verify () =
  let dir, p = env () in
  let alice = p "alice" in
  let s = Atomic.create dir in
  let a, r0 = Atomic.insert s alice (Value.Int 1) in
  Alcotest.(check int) "insert seq 0" 0 r0.Record.seq_id;
  let r1 = ok (Atomic.update s alice a (Value.Int 2)) in
  Alcotest.(check int) "update seq 1" 1 r1.Record.seq_id;
  Alcotest.(check bool) "chains" true
    (r1.Record.prev_checksums = [ r0.Record.checksum ]);
  Alcotest.(check bool) "current" true
    (Atomic.current s a = Some (Value.Int 2));
  Alcotest.(check bool) "old version" true
    (Atomic.version s a 0 = Some (Value.Int 1));
  let report = ok (Atomic.verify s a) in
  Alcotest.(check bool) "verifies" true (Verifier.ok report)

let test_update_missing () =
  let dir, p = env () in
  let alice = p "alice" in
  let s = Atomic.create dir in
  match Atomic.update s alice (Oid.of_int 99) (Value.Int 1) with
  | Ok _ -> Alcotest.fail "updated missing object"
  | Error _ -> ()

let test_delete () =
  let dir, p = env () in
  let alice = p "alice" in
  let s = Atomic.create dir in
  let a, _ = Atomic.insert s alice (Value.Int 1) in
  ok (Atomic.delete s a);
  Alcotest.(check bool) "gone" true (Atomic.current s a = None);
  (match Atomic.deliver s a with
  | Ok _ -> Alcotest.fail "delivered deleted object"
  | Error _ -> ());
  match Atomic.delete s a with
  | Ok () -> Alcotest.fail "double delete"
  | Error _ -> ()

(* ---- the Figure 2 / Figure 3 worked example ---- *)

let figure3 () =
  let dir, p = env () in
  let p1 = p "p1" and p2 = p "p2" and p3 = p "p3" in
  let s = Atomic.create dir in
  let v name i = Value.Text (Printf.sprintf "%s%d" name i) in
  let a, c1 = Atomic.insert s p2 (v "a" 1) in
  let b, c2 = Atomic.insert s p2 (v "b" 1) in
  let c3 = ok (Atomic.update s p1 a (v "a" 2)) in
  let c4 = ok (Atomic.update s p2 b (v "b" 2)) in
  let c5 = ok (Atomic.update s p2 a (v "a" 3)) in
  let c, c6 = ok (Atomic.aggregate s p3 ~value:(v "c" 1) [ (a, Some 0); (b, Some 1) ]) in
  let d, c7 = ok (Atomic.aggregate s p1 ~value:(v "d" 1) [ (a, None); (c, None) ]) in
  (dir, s, (a, b, c, d), (c1, c2, c3, c4, c5, c6, c7))

let test_figure3_seq_ids () =
  let _, _, _, (c1, c2, c3, c4, c5, c6, c7) = figure3 () in
  (* the seqID column of Figure 3 *)
  Alcotest.(check (list int)) "seq ids"
    [ 0; 0; 1; 1; 2; 2; 3 ]
    (List.map (fun r -> r.Record.seq_id) [ c1; c2; c3; c4; c5; c6; c7 ])

let test_figure3_participants () =
  let _, _, _, (c1, c2, c3, c4, c5, c6, c7) = figure3 () in
  Alcotest.(check (list string)) "participants"
    [ "p2"; "p2"; "p1"; "p2"; "p2"; "p3"; "p1" ]
    (List.map (fun r -> r.Record.participant) [ c1; c2; c3; c4; c5; c6; c7 ])

let test_figure3_chaining () =
  let _, _, _, (c1, _c2, c3, c4, c5, c6, c7) = figure3 () in
  (* C3 = S(h(A,a1)|h(A,a2)|C1); C6 cites C1 and C4; C7 cites C5 and C6 *)
  Alcotest.(check bool) "C3 <- C1" true (c3.Record.prev_checksums = [ c1.Record.checksum ]);
  Alcotest.(check bool) "C5 <- C3" true (c5.Record.prev_checksums = [ c3.Record.checksum ]);
  Alcotest.(check bool) "C6 <- C1,C4" true
    (c6.Record.prev_checksums = [ c1.Record.checksum; c4.Record.checksum ]);
  Alcotest.(check bool) "C7 <- C5,C6" true
    (c7.Record.prev_checksums = [ c5.Record.checksum; c6.Record.checksum ]);
  (* C6's first input hash is h(A, a1), i.e. version 0 of A *)
  Alcotest.(check bool) "C6 reads a1" true
    (List.nth c6.Record.input_hashes 0 = c1.Record.output_hash)

let test_figure3_delivery_and_verification () =
  let dir, s, (_, _, _, d), _ = figure3 () in
  let data, records = ok (Atomic.deliver s d) in
  Alcotest.(check int) "7-record provenance object" 7 (List.length records);
  let report = Verifier.verify ~algo:(Atomic.algo s) ~directory:dir ~data records in
  Alcotest.(check bool) "verifies clean" true (Verifier.ok report);
  (* DAG shape *)
  let dag = Dag.build records in
  Alcotest.(check bool) "non-linear" false (Dag.is_linear dag);
  Alcotest.(check int) "two inserts" 2 (List.length (Dag.roots dag))

let test_figure3_b_subset () =
  let _, s, (_, b, _, _), _ = figure3 () in
  let _, records = ok (Atomic.deliver s b) in
  (* B's provenance object is just its own 2-record chain *)
  Alcotest.(check int) "B chain" 2 (List.length records)

let test_aggregate_missing_version () =
  let dir, p = env () in
  let alice = p "alice" in
  let s = Atomic.create dir in
  let a, _ = Atomic.insert s alice (Value.Int 1) in
  match Atomic.aggregate s alice ~value:Value.Null [ (a, Some 5) ] with
  | Ok _ -> Alcotest.fail "missing version accepted"
  | Error _ -> ()

let test_latest_seq () =
  let dir, p = env () in
  let alice = p "alice" in
  let s = Atomic.create dir in
  let a, _ = Atomic.insert s alice (Value.Int 1) in
  ignore (ok (Atomic.update s alice a (Value.Int 2)));
  Alcotest.(check (option int)) "latest" (Some 1) (Atomic.latest_seq s a);
  Alcotest.(check (option int)) "missing" None (Atomic.latest_seq s (Oid.of_int 77))

let () =
  Alcotest.run "atomic"
    [
      ( "unit",
        [
          Alcotest.test_case "insert/update/verify" `Quick
            test_insert_update_verify;
          Alcotest.test_case "update missing" `Quick test_update_missing;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "aggregate missing version" `Quick
            test_aggregate_missing_version;
          Alcotest.test_case "latest_seq" `Quick test_latest_seq;
        ] );
      ( "figure3",
        [
          Alcotest.test_case "seq ids" `Quick test_figure3_seq_ids;
          Alcotest.test_case "participants" `Quick test_figure3_participants;
          Alcotest.test_case "chaining" `Quick test_figure3_chaining;
          Alcotest.test_case "delivery & verification" `Quick
            test_figure3_delivery_and_verification;
          Alcotest.test_case "B subset" `Quick test_figure3_b_subset;
        ] );
    ]
