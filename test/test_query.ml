(* Predicates, bulk updates/deletes, aggregates. *)
open Tep_store
open Query

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let mk_table () =
  let schema =
    Schema.make
      [
        { Schema.name = "id"; ty = Value.TInt; nullable = false };
        { Schema.name = "score"; ty = Value.TInt; nullable = true };
        { Schema.name = "name"; ty = Value.TText; nullable = false };
      ]
  in
  let t = Table.create ~name:"people" schema in
  List.iter
    (fun (i, s, n) ->
      ignore
        (Table.insert t
           [|
             Value.Int i;
             (match s with Some v -> Value.Int v | None -> Value.Null);
             Value.Text n;
           |]))
    [
      (1, Some 10, "ann");
      (2, Some 20, "bob");
      (3, None, "carol");
      (4, Some 40, "dave");
      (5, Some 50, "ann");
    ];
  t

let test_select_cmp () =
  let t = mk_table () in
  Alcotest.(check int) "gt" 2
    (List.length (ok (select t (Cmp ("score", Gt, Value.Int 20)))));
  Alcotest.(check int) "eq text" 2
    (List.length (ok (select t (Cmp ("name", Eq, Value.Text "ann")))));
  Alcotest.(check int) "ne" 3
    (List.length (ok (select t (Cmp ("name", Ne, Value.Text "ann")))));
  Alcotest.(check int) "le" 2
    (List.length (ok (select t (Cmp ("score", Le, Value.Int 20)))))

let test_null_semantics () =
  let t = mk_table () in
  (* NULL never matches a comparison, even Ne *)
  Alcotest.(check int) "null not in ne" 3
    (List.length (ok (select t (Cmp ("score", Ne, Value.Int 10)))));
  Alcotest.(check int) "is null" 1 (List.length (ok (select t (IsNull "score"))));
  Alcotest.(check int) "not null" 4
    (List.length (ok (select t (Not (IsNull "score")))))

let test_boolean_ops () =
  let t = mk_table () in
  let p =
    And (Cmp ("score", Ge, Value.Int 20), Cmp ("name", Ne, Value.Text "dave"))
  in
  Alcotest.(check int) "and" 2 (List.length (ok (select t p)));
  let p = Or (Cmp ("name", Eq, Value.Text "carol"), Cmp ("id", Eq, Value.Int 1)) in
  Alcotest.(check int) "or" 2 (List.length (ok (select t p)));
  Alcotest.(check int) "true" 5 (List.length (ok (select t True)))

let test_unknown_column () =
  let t = mk_table () in
  match select t (Cmp ("nope", Eq, Value.Int 1)) with
  | Ok _ -> Alcotest.fail "unknown column accepted"
  | Error e -> Alcotest.(check string) "msg" "unknown column nope" e

let test_count () =
  let t = mk_table () in
  Alcotest.(check int) "count" 2 (ok (count t (Cmp ("name", Eq, Value.Text "ann"))))

let test_delete_where () =
  let t = mk_table () in
  let ids = ok (delete_where t (Cmp ("score", Lt, Value.Int 25))) in
  Alcotest.(check int) "deleted" 2 (List.length ids);
  Alcotest.(check int) "remaining" 3 (Table.row_count t)

let test_update_where () =
  let t = mk_table () in
  let ids = ok (update_where t (Cmp ("name", Eq, Value.Text "ann")) [ ("score", Value.Int 0) ]) in
  Alcotest.(check int) "touched" 2 (List.length ids);
  Alcotest.(check int) "zeroed" 2 (ok (count t (Cmp ("score", Eq, Value.Int 0))));
  match update_where t True [ ("nope", Value.Int 0) ] with
  | Ok _ -> Alcotest.fail "unknown column accepted"
  | Error _ -> ()

let test_aggregates () =
  let t = mk_table () in
  let v = Alcotest.testable Value.pp Value.equal in
  Alcotest.check v "count" (Value.Int 5) (ok (aggregate t True Count));
  Alcotest.check v "sum skips null" (Value.Int 120) (ok (aggregate t True (Sum "score")));
  Alcotest.check v "avg" (Value.Float 30.) (ok (aggregate t True (Avg "score")));
  Alcotest.check v "min" (Value.Int 10) (ok (aggregate t True (Min "score")));
  Alcotest.check v "max" (Value.Int 50) (ok (aggregate t True (Max "score")));
  Alcotest.check v "min text" (Value.Text "ann") (ok (aggregate t True (Min "name")));
  (* empty input *)
  Alcotest.check v "empty sum" Value.Null
    (ok (aggregate t (Cmp ("id", Gt, Value.Int 100)) (Sum "score")));
  Alcotest.check v "empty count" (Value.Int 0)
    (ok (aggregate t (Cmp ("id", Gt, Value.Int 100)) Count));
  (* non-numeric sum *)
  match aggregate t True (Sum "name") with
  | Ok _ -> Alcotest.fail "text sum accepted"
  | Error _ -> ()

let test_pp () =
  let p = And (Cmp ("a", Le, Value.Int 3), Not (IsNull "b")) in
  Alcotest.(check string) "render" "(a <= 3 and not b is null)"
    (Format.asprintf "%a" pp_pred p)

(* ---- pred_of_string: the inverse of pp_pred ---- *)

let test_parse_pred () =
  let p s = ok (pred_of_string s) in
  (* not > and > or *)
  Alcotest.(check string) "precedence"
    "((i = 1 and not j = 2) or k is null)"
    (pred_to_string (p "i = 1 and not j = 2 or k is null"));
  Alcotest.(check string) "parens" "(i = 1 and (j = 2 or k = 3))"
    (pred_to_string (p "i = 1 and (j = 2 or k = 3)"));
  (* quoted text, with spaces and keywords *)
  (match p "name = 'ann and bob'" with
  | Cmp ("name", Eq, Value.Text "ann and bob") -> ()
  | q -> Alcotest.failf "quoted text parsed as %s" (pred_to_string q));
  (* unquoted multi-word values join with spaces *)
  (match p "name = ann bob" with
  | Cmp ("name", Eq, Value.Text "ann bob") -> ()
  | q -> Alcotest.failf "multi-word text parsed as %s" (pred_to_string q));
  (match p "score is not null" with
  | Not (IsNull "score") -> ()
  | q -> Alcotest.failf "is-not-null parsed as %s" (pred_to_string q));
  Alcotest.(check bool) "empty is true" true (p "" = True);
  List.iter
    (fun bad ->
      match pred_of_string bad with
      | Ok q -> Alcotest.failf "%S accepted as %s" bad (pred_to_string q)
      | Error _ -> ())
    [ "i ="; "= 1"; "i = 'abc"; "(i = 1"; "i = 1)"; "and"; "not"; "i <=> 1" ]

(* Property: parse is the left inverse of print, over a typed schema.
   Values are printed by Value.to_string, so the parser sees "1" for
   Float 1. and reads it back as Int 1 — coerce_pred against the
   schema restores the typed form, which is also exactly what every
   pred_of_string caller does with live tables. *)
let roundtrip_schema =
  Schema.make
    [
      { Schema.name = "i"; ty = Value.TInt; nullable = true };
      { Schema.name = "f"; ty = Value.TFloat; nullable = true };
      { Schema.name = "b"; ty = Value.TBool; nullable = true };
      { Schema.name = "s"; ty = Value.TText; nullable = true };
    ]

(* Lowercase words that are neither grammar keywords nor parseable as
   numbers, so a text value reparses as itself. *)
let gen_word =
  let keywords =
    [ "and"; "or"; "not"; "is"; "null"; "true"; "false"; "nan"; "inf";
      "infinity" ]
  in
  QCheck2.Gen.(
    map
      (fun s -> if List.mem s keywords then s ^ "x" else s)
      (string_size
         ~gen:(map (fun i -> Char.chr (Char.code 'a' + i)) (int_range 0 25))
         (int_range 1 8)))

let gen_cmp =
  let open QCheck2.Gen in
  let col_val =
    oneof
      [
        map (fun n -> ("i", Value.Int n)) (int_range (-1000) 1000);
        map
          (fun n -> ("f", Value.Float (float_of_int n /. 8.)))
          (int_range (-1000) 1000);
        map (fun b -> ("b", Value.Bool b)) bool;
        map (fun w -> ("s", Value.Text w)) gen_word;
        oneofl [ ("i", Value.Null); ("s", Value.Null) ];
      ]
  in
  map2
    (fun (c, v) op -> Cmp (c, op, v))
    col_val
    (oneofl [ Eq; Ne; Lt; Le; Gt; Ge ])

let gen_pred =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then
             oneof
               [ return True; gen_cmp; oneofl [ IsNull "i"; IsNull "s" ] ]
           else
             frequency
               [
                 (3, gen_cmp);
                 (1, map (fun p -> Not p) (self (n - 1)));
                 (2, map2 (fun a b -> And (a, b)) (self (n / 2)) (self (n / 2)));
                 (2, map2 (fun a b -> Or (a, b)) (self (n / 2)) (self (n / 2)));
               ]))

let prop_pred_roundtrip =
  QCheck2.Test.make ~name:"coerce (parse (print p)) = p" ~count:1000 gen_pred
    (fun p ->
      let s = pred_to_string p in
      match pred_of_string s with
      | Error e -> QCheck2.Test.fail_reportf "parse error on %S: %s" s e
      | Ok q -> coerce_pred roundtrip_schema q = p)

let () =
  Alcotest.run "query"
    [
      ( "unit",
        [
          Alcotest.test_case "select cmp" `Quick test_select_cmp;
          Alcotest.test_case "null semantics" `Quick test_null_semantics;
          Alcotest.test_case "boolean ops" `Quick test_boolean_ops;
          Alcotest.test_case "unknown column" `Quick test_unknown_column;
          Alcotest.test_case "count" `Quick test_count;
          Alcotest.test_case "delete_where" `Quick test_delete_where;
          Alcotest.test_case "update_where" `Quick test_update_where;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
      ( "pred-parse",
        [
          Alcotest.test_case "grammar" `Quick test_parse_pred;
          QCheck_alcotest.to_alcotest prop_pred_roundtrip;
        ] );
    ]
