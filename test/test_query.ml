(* Predicates, bulk updates/deletes, aggregates. *)
open Tep_store
open Query

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let mk_table () =
  let schema =
    Schema.make
      [
        { Schema.name = "id"; ty = Value.TInt; nullable = false };
        { Schema.name = "score"; ty = Value.TInt; nullable = true };
        { Schema.name = "name"; ty = Value.TText; nullable = false };
      ]
  in
  let t = Table.create ~name:"people" schema in
  List.iter
    (fun (i, s, n) ->
      ignore
        (Table.insert t
           [|
             Value.Int i;
             (match s with Some v -> Value.Int v | None -> Value.Null);
             Value.Text n;
           |]))
    [
      (1, Some 10, "ann");
      (2, Some 20, "bob");
      (3, None, "carol");
      (4, Some 40, "dave");
      (5, Some 50, "ann");
    ];
  t

let test_select_cmp () =
  let t = mk_table () in
  Alcotest.(check int) "gt" 2
    (List.length (ok (select t (Cmp ("score", Gt, Value.Int 20)))));
  Alcotest.(check int) "eq text" 2
    (List.length (ok (select t (Cmp ("name", Eq, Value.Text "ann")))));
  Alcotest.(check int) "ne" 3
    (List.length (ok (select t (Cmp ("name", Ne, Value.Text "ann")))));
  Alcotest.(check int) "le" 2
    (List.length (ok (select t (Cmp ("score", Le, Value.Int 20)))))

let test_null_semantics () =
  let t = mk_table () in
  (* NULL never matches a comparison, even Ne *)
  Alcotest.(check int) "null not in ne" 3
    (List.length (ok (select t (Cmp ("score", Ne, Value.Int 10)))));
  Alcotest.(check int) "is null" 1 (List.length (ok (select t (IsNull "score"))));
  Alcotest.(check int) "not null" 4
    (List.length (ok (select t (Not (IsNull "score")))))

let test_boolean_ops () =
  let t = mk_table () in
  let p =
    And (Cmp ("score", Ge, Value.Int 20), Cmp ("name", Ne, Value.Text "dave"))
  in
  Alcotest.(check int) "and" 2 (List.length (ok (select t p)));
  let p = Or (Cmp ("name", Eq, Value.Text "carol"), Cmp ("id", Eq, Value.Int 1)) in
  Alcotest.(check int) "or" 2 (List.length (ok (select t p)));
  Alcotest.(check int) "true" 5 (List.length (ok (select t True)))

let test_unknown_column () =
  let t = mk_table () in
  match select t (Cmp ("nope", Eq, Value.Int 1)) with
  | Ok _ -> Alcotest.fail "unknown column accepted"
  | Error e -> Alcotest.(check string) "msg" "unknown column nope" e

let test_count () =
  let t = mk_table () in
  Alcotest.(check int) "count" 2 (ok (count t (Cmp ("name", Eq, Value.Text "ann"))))

let test_delete_where () =
  let t = mk_table () in
  let ids = ok (delete_where t (Cmp ("score", Lt, Value.Int 25))) in
  Alcotest.(check int) "deleted" 2 (List.length ids);
  Alcotest.(check int) "remaining" 3 (Table.row_count t)

let test_update_where () =
  let t = mk_table () in
  let ids = ok (update_where t (Cmp ("name", Eq, Value.Text "ann")) [ ("score", Value.Int 0) ]) in
  Alcotest.(check int) "touched" 2 (List.length ids);
  Alcotest.(check int) "zeroed" 2 (ok (count t (Cmp ("score", Eq, Value.Int 0))));
  match update_where t True [ ("nope", Value.Int 0) ] with
  | Ok _ -> Alcotest.fail "unknown column accepted"
  | Error _ -> ()

let test_aggregates () =
  let t = mk_table () in
  let v = Alcotest.testable Value.pp Value.equal in
  Alcotest.check v "count" (Value.Int 5) (ok (aggregate t True Count));
  Alcotest.check v "sum skips null" (Value.Int 120) (ok (aggregate t True (Sum "score")));
  Alcotest.check v "avg" (Value.Float 30.) (ok (aggregate t True (Avg "score")));
  Alcotest.check v "min" (Value.Int 10) (ok (aggregate t True (Min "score")));
  Alcotest.check v "max" (Value.Int 50) (ok (aggregate t True (Max "score")));
  Alcotest.check v "min text" (Value.Text "ann") (ok (aggregate t True (Min "name")));
  (* empty input *)
  Alcotest.check v "empty sum" Value.Null
    (ok (aggregate t (Cmp ("id", Gt, Value.Int 100)) (Sum "score")));
  Alcotest.check v "empty count" (Value.Int 0)
    (ok (aggregate t (Cmp ("id", Gt, Value.Int 100)) Count));
  (* non-numeric sum *)
  match aggregate t True (Sum "name") with
  | Ok _ -> Alcotest.fail "text sum accepted"
  | Error _ -> ()

let test_pp () =
  let p = And (Cmp ("a", Le, Value.Int 3), Not (IsNull "b")) in
  Alcotest.(check string) "render" "(a <= 3 and not b is null)"
    (Format.asprintf "%a" pp_pred p)

let () =
  Alcotest.run "query"
    [
      ( "unit",
        [
          Alcotest.test_case "select cmp" `Quick test_select_cmp;
          Alcotest.test_case "null semantics" `Quick test_null_semantics;
          Alcotest.test_case "boolean ops" `Quick test_boolean_ops;
          Alcotest.test_case "unknown column" `Quick test_unknown_column;
          Alcotest.test_case "count" `Quick test_count;
          Alcotest.test_case "delete_where" `Quick test_delete_where;
          Alcotest.test_case "update_where" `Quick test_update_where;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
    ]
