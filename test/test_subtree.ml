(* Oids and subtree snapshots. *)
open Tep_store
open Tep_tree

let oid = Oid.of_int

let leaf i v = Subtree.atom (oid i) (Value.Int v)

let sample =
  Subtree.make (oid 0) (Value.Text "root")
    [
      Subtree.make (oid 1) (Value.Text "left") [ leaf 3 30; leaf 4 40 ];
      leaf 2 20;
    ]

let test_oid_basics () =
  Alcotest.(check int) "roundtrip" 7 (Oid.to_int (Oid.of_int 7));
  Alcotest.(check string) "to_string" "#7" (Oid.to_string (oid 7));
  Alcotest.(check bool) "equal" true (Oid.equal (oid 1) (oid 1));
  Alcotest.(check bool) "compare" true (Oid.compare (oid 1) (oid 2) < 0);
  Alcotest.check_raises "negative" (Invalid_argument "Oid.of_int: negative")
    (fun () -> ignore (Oid.of_int (-1)))

let test_oid_gen () =
  let g = Oid.gen () in
  let a = Oid.fresh g and b = Oid.fresh g in
  Alcotest.(check bool) "fresh distinct" false (Oid.equal a b);
  Oid.bump_past g (oid 100);
  Alcotest.(check bool) "bumped" true (Oid.to_int (Oid.fresh g) > 100)

let test_children_sorted () =
  let t = Subtree.make (oid 0) Value.Null [ leaf 5 0; leaf 1 0; leaf 3 0 ] in
  Alcotest.(check (list int)) "sorted"
    [ 1; 3; 5 ]
    (List.map (fun c -> Oid.to_int c.Subtree.oid) t.Subtree.children)

let test_duplicate_children () =
  Alcotest.check_raises "dup" (Invalid_argument "Subtree.make: duplicate child oid")
    (fun () -> ignore (Subtree.make (oid 0) Value.Null [ leaf 1 0; leaf 1 0 ]))

let test_size_depth () =
  Alcotest.(check int) "size" 5 (Subtree.size sample);
  Alcotest.(check int) "depth" 3 (Subtree.depth sample);
  Alcotest.(check int) "leaf size" 1 (Subtree.size (leaf 9 0));
  Alcotest.(check int) "leaf depth" 1 (Subtree.depth (leaf 9 0))

let test_find () =
  (match Subtree.find sample (oid 4) with
  | Some t -> Alcotest.(check bool) "value" true (Value.equal t.Subtree.value (Value.Int 40))
  | None -> Alcotest.fail "not found");
  (match Subtree.find sample (oid 0) with
  | Some _ -> ()
  | None -> Alcotest.fail "root not found");
  Alcotest.(check bool) "missing" true (Subtree.find sample (oid 99) = None)

let test_oids_preorder () =
  Alcotest.(check (list int)) "preorder" [ 0; 1; 3; 4; 2 ]
    (List.map Oid.to_int (Subtree.oids sample))

let test_equality () =
  Alcotest.(check bool) "self" true (Subtree.equal sample sample);
  let other = Subtree.make (oid 0) (Value.Text "root") [ leaf 2 20 ] in
  Alcotest.(check bool) "different" false (Subtree.equal sample other)

let test_codec () =
  let enc = Subtree.encoded sample in
  let t, off = Subtree.decode enc 0 in
  Alcotest.(check int) "consumed" (String.length enc) off;
  Alcotest.(check bool) "equal" true (Subtree.equal sample t)

let contains sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_pp () =
  let s = Subtree.to_string (leaf 7 42) in
  Alcotest.(check bool) "mentions oid" true (contains "#7" s);
  Alcotest.(check bool) "mentions value" true (contains "42" s)

let () =
  Alcotest.run "subtree"
    [
      ( "unit",
        [
          Alcotest.test_case "oid basics" `Quick test_oid_basics;
          Alcotest.test_case "oid gen" `Quick test_oid_gen;
          Alcotest.test_case "children sorted" `Quick test_children_sorted;
          Alcotest.test_case "duplicate children" `Quick
            test_duplicate_children;
          Alcotest.test_case "size/depth" `Quick test_size_depth;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "preorder oids" `Quick test_oids_preorder;
          Alcotest.test_case "equality" `Quick test_equality;
          Alcotest.test_case "codec" `Quick test_codec;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
    ]
