(* RSA key generation, PKCS#1 v1.5 signatures, serialisation. *)
open Tep_bignum
open Tep_crypto

let drbg = Drbg.create ~seed:"test-rsa"

(* One shared 1024-bit keypair (generation is the slow part). *)
let kp = Rsa.generate drbg
let kp512 = Rsa.generate ~bits:512 drbg

let test_key_shape () =
  Alcotest.(check int) "1024-bit modulus" 1024 (Nat.num_bits kp.Rsa.public.Rsa.n);
  Alcotest.(check int) "128-byte signatures" 128 (Rsa.key_bytes kp.Rsa.public);
  Alcotest.(check int) "512-bit modulus" 512 (Nat.num_bits kp512.Rsa.public.Rsa.n);
  Alcotest.(check string)
    "e = 65537" "10001"
    (Nat.to_hex kp.Rsa.public.Rsa.e)

let test_sign_verify () =
  List.iter
    (fun msg ->
      let s = Rsa.sign kp.Rsa.private_ msg in
      Alcotest.(check int) "sig length" 128 (String.length s);
      Alcotest.(check bool)
        "verifies" true
        (Rsa.verify kp.Rsa.public ~msg ~signature:s))
    [ ""; "x"; "hello provenance"; String.make 10_000 'q' ]

let test_wrong_message () =
  let s = Rsa.sign kp.Rsa.private_ "message one" in
  Alcotest.(check bool)
    "other message fails" false
    (Rsa.verify kp.Rsa.public ~msg:"message two" ~signature:s)

let test_corrupted_signature () =
  let s = Rsa.sign kp.Rsa.private_ "msg" in
  for pos = 0 to 127 do
    let bad = Bytes.of_string s in
    Bytes.set bad pos (Char.chr (Char.code (Bytes.get bad pos) lxor 0x40));
    if pos mod 17 = 0 then
      Alcotest.(check bool)
        (Printf.sprintf "flip byte %d" pos)
        false
        (Rsa.verify kp.Rsa.public ~msg:"msg" ~signature:(Bytes.to_string bad))
  done

let test_wrong_key () =
  let s = Rsa.sign kp.Rsa.private_ "msg" in
  Alcotest.(check bool)
    "other key fails" false
    (Rsa.verify
       { kp512.Rsa.public with Rsa.n = kp512.Rsa.public.Rsa.n }
       ~msg:"msg" ~signature:s)

let test_wrong_length_signature () =
  Alcotest.(check bool)
    "short sig" false
    (Rsa.verify kp.Rsa.public ~msg:"m" ~signature:"short");
  Alcotest.(check bool)
    "sig >= n rejected" false
    (Rsa.verify kp.Rsa.public ~msg:"m"
       ~signature:(Nat.to_bytes_be_padded 128 kp.Rsa.public.Rsa.n))

let test_algo_choice () =
  let s256 = Rsa.sign ~algo:Digest_algo.SHA256 kp.Rsa.private_ "m" in
  Alcotest.(check bool)
    "sha256 verifies with sha256" true
    (Rsa.verify ~algo:Digest_algo.SHA256 kp.Rsa.public ~msg:"m" ~signature:s256);
  Alcotest.(check bool)
    "sha256 fails as sha1" false
    (Rsa.verify ~algo:Digest_algo.SHA1 kp.Rsa.public ~msg:"m" ~signature:s256)

let test_raw_roundtrip () =
  (* raw_public (raw_sign m) = m for m < n: the CRT path agrees with
     the plain exponentiation. *)
  let src = Drbg.byte_source drbg in
  for _ = 1 to 5 do
    let m = Nat.rem (Prime.random_bits src 1000) kp.Rsa.public.Rsa.n in
    let s = Rsa.raw_sign kp.Rsa.private_ m in
    Alcotest.(check string)
      "roundtrip" (Nat.to_hex m)
      (Nat.to_hex (Rsa.raw_public kp.Rsa.public s))
  done

let test_emsa_shape () =
  let em = Rsa.emsa_pkcs1_v1_5 Digest_algo.SHA1 128 "msg" in
  Alcotest.(check int) "length" 128 (String.length em);
  Alcotest.(check char) "leading 00" '\x00' em.[0];
  Alcotest.(check char) "block type 01" '\x01' em.[1];
  Alcotest.(check char) "ff padding" '\xff' em.[2];
  Alcotest.check_raises "too small"
    (Invalid_argument "Rsa.emsa_pkcs1_v1_5: key too small") (fun () ->
      ignore (Rsa.emsa_pkcs1_v1_5 Digest_algo.SHA256 32 "m"))

let test_serialisation () =
  (match Rsa.public_of_string (Rsa.public_to_string kp.Rsa.public) with
  | Some pk ->
      Alcotest.(check string)
        "public roundtrip"
        (Rsa.public_to_string kp.Rsa.public)
        (Rsa.public_to_string pk)
  | None -> Alcotest.fail "public roundtrip");
  (match Rsa.private_of_string (Rsa.private_to_string kp.Rsa.private_) with
  | Some sk ->
      let s = Rsa.sign sk "roundtrip" in
      Alcotest.(check bool)
        "private roundtrip signs" true
        (Rsa.verify kp.Rsa.public ~msg:"roundtrip" ~signature:s)
  | None -> Alcotest.fail "private roundtrip");
  Alcotest.(check bool) "garbage public" true (Rsa.public_of_string "junk" = None);
  Alcotest.(check bool) "garbage private" true (Rsa.private_of_string "junk" = None)

let test_fingerprint () =
  Alcotest.(check int) "16 hex chars" 16 (String.length (Rsa.fingerprint kp.Rsa.public));
  Alcotest.(check bool)
    "distinct keys, distinct fingerprints" false
    (String.equal (Rsa.fingerprint kp.Rsa.public) (Rsa.fingerprint kp512.Rsa.public))

let test_determinism () =
  (* Same DRBG seed -> same keypair (reproducible experiments). *)
  let k1 = Rsa.generate ~bits:512 (Drbg.create ~seed:"fixed") in
  let k2 = Rsa.generate ~bits:512 (Drbg.create ~seed:"fixed") in
  Alcotest.(check string)
    "same key"
    (Rsa.public_to_string k1.Rsa.public)
    (Rsa.public_to_string k2.Rsa.public)

let test_invalid_params () =
  Alcotest.check_raises "tiny modulus"
    (Invalid_argument "Rsa.generate: modulus too small") (fun () ->
      ignore (Rsa.generate ~bits:64 drbg));
  Alcotest.check_raises "even exponent"
    (Invalid_argument "Rsa.generate: bad public exponent") (fun () ->
      ignore (Rsa.generate ~e:4 drbg))

let prop_sign_verify_512 =
  QCheck2.Test.make ~name:"sign/verify roundtrip (512-bit)" ~count:25
    QCheck2.Gen.(string_size ~gen:char (int_range 0 200))
    (fun msg ->
      let s = Rsa.sign kp512.Rsa.private_ msg in
      Rsa.verify kp512.Rsa.public ~msg ~signature:s)

let prop_tamper_detected =
  QCheck2.Test.make ~name:"any appended byte breaks verification" ~count:25
    QCheck2.Gen.(pair (string_size ~gen:char (int_range 1 100)) char)
    (fun (msg, extra) ->
      let s = Rsa.sign kp512.Rsa.private_ msg in
      not (Rsa.verify kp512.Rsa.public ~msg:(msg ^ String.make 1 extra) ~signature:s))

let test_encrypt_decrypt () =
  List.iter
    (fun msg ->
      let c = Rsa.encrypt drbg kp512.Rsa.public msg in
      Alcotest.(check int)
        "ciphertext is key-sized" (Rsa.key_bytes kp512.Rsa.public)
        (String.length c);
      (match Rsa.decrypt kp512.Rsa.private_ c with
      | Some m -> Alcotest.(check string) "round trip" msg m
      | None -> Alcotest.fail "decryption failed");
      (* padding is randomised: a second encryption differs *)
      Alcotest.(check bool)
        "probabilistic padding" true
        (msg = "" || Rsa.encrypt drbg kp512.Rsa.public msg <> c))
    [ ""; "x"; String.make 32 '\x2a'; String.make 53 '\x00' ];
  (* 512-bit key: 64-byte modulus, so 53 bytes is the largest message *)
  match Rsa.encrypt drbg kp512.Rsa.public (String.make 54 'y') with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "over-long message must be rejected"

let test_decrypt_rejects () =
  let c = Rsa.encrypt drbg kp512.Rsa.public "secret" in
  (* wrong length *)
  Alcotest.(check bool)
    "short ciphertext" true
    (Rsa.decrypt kp512.Rsa.private_ (String.sub c 0 10) = None);
  (* a tampered ciphertext never yields the plaintext (with this
     deterministic DRBG it fails padding outright) *)
  let flipped =
    String.mapi
      (fun i ch -> if i = 0 then Char.chr (Char.code ch lxor 1) else ch)
      c
  in
  (match Rsa.decrypt kp512.Rsa.private_ flipped with
  | None -> ()
  | Some m -> Alcotest.(check bool) "tampered ciphertext" true (m <> "secret"));
  (* value >= modulus *)
  Alcotest.(check bool)
    "out of range" true
    (Rsa.decrypt kp512.Rsa.private_ (String.make 64 '\xff') = None)

let () =
  Alcotest.run "rsa"
    [
      ( "unit",
        [
          Alcotest.test_case "key shape" `Quick test_key_shape;
          Alcotest.test_case "sign/verify" `Quick test_sign_verify;
          Alcotest.test_case "wrong message" `Quick test_wrong_message;
          Alcotest.test_case "corrupted signature" `Quick
            test_corrupted_signature;
          Alcotest.test_case "wrong key" `Quick test_wrong_key;
          Alcotest.test_case "wrong-length signature" `Quick
            test_wrong_length_signature;
          Alcotest.test_case "algo choice" `Quick test_algo_choice;
          Alcotest.test_case "raw roundtrip" `Quick test_raw_roundtrip;
          Alcotest.test_case "emsa shape" `Quick test_emsa_shape;
          Alcotest.test_case "serialisation" `Quick test_serialisation;
          Alcotest.test_case "fingerprint" `Quick test_fingerprint;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "invalid params" `Quick test_invalid_params;
          Alcotest.test_case "encrypt/decrypt" `Quick test_encrypt_decrypt;
          Alcotest.test_case "decrypt rejects garbage" `Quick
            test_decrypt_rejects;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sign_verify_512; prop_tamper_detected ] );
    ]
