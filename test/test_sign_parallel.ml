(* Pooled commit-signing determinism.

   Engine.commit stages records sequentially, signs them across the
   domain pool, then appends/journals sequentially — so an engine with
   a pool attached must produce records, checksums, WAL bytes and
   Merkle roots byte-identical to the sequential engine, including
   through the aggregate/complex-op path and with a Delay failpoint
   perturbing signer completion order.  The @sign-parallel CI gate
   runs this binary under TEP_DOMAINS=4. *)
open Tep_store
open Tep_tree
open Tep_core
module Pool = Tep_parallel.Pool
module Fault = Tep_fault.Fault

let ok = function Ok v -> v | Error e -> Alcotest.fail e
let ( let* ) = Result.bind

type env = {
  eng : Engine.t;
  alice : Participant.t;
  dir : string;
  wal_path : string;
  wal : Wal.t;
}

let temp_dir tag =
  let d = Filename.temp_file ("sign-par-" ^ tag) "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

(* Both engines are built from the same DRBG seed, so participants,
   keys and the initial database are bit-for-bit identical; only the
   pool differs. *)
let make_env ?pool tag =
  let drbg = Tep_crypto.Drbg.create ~seed:"sign-parallel" in
  let ca = Tep_crypto.Pki.create_ca ~name:"CA" drbg in
  let dir_ =
    Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
  in
  let alice = Participant.create ~ca ~name:"alice" drbg in
  Participant.Directory.register dir_ alice;
  let db = Database.create ~name:"signdb" in
  let t =
    ok (Database.create_table db ~name:"t" (Schema.all_int [ "a"; "b"; "c" ]))
  in
  for i = 0 to 7 do
    ignore
      (Table.insert t [| Value.Int i; Value.Int (i * 2); Value.Int (i * 3) |])
  done;
  let dir = temp_dir tag in
  let wal_path = Filename.concat dir "wal.log" in
  let wal = Wal.open_file wal_path in
  let eng = Engine.create ?pool ~wal ~directory:dir_ db in
  { eng; alice; dir; wal_path; wal }

let cell env row col =
  match Tree_view.cell_oid (Engine.mapping env.eng) "t" row col with
  | Some o -> o
  | None -> Alcotest.fail (Printf.sprintf "no cell (%d,%d)" row col)

(* The canonical workload: a wide multi-op complex operation (many
   records in one commit); then one complex op that re-updates a
   tracked cell and chains two aggregates — the second cites the
   first's output, so its seq_id depends on seeing the sibling record
   assigned earlier in the SAME commit (the in-commit visibility the
   staged pipeline must replay), while untracked inputs get their
   Imports mid-body; then a singleton aggregate over tracked objects
   and a singleton update. *)
let workload env =
  let eng = env.eng and alice = env.alice in
  let (), _ =
    ok
      (Engine.complex_op eng alice (fun () ->
           let* () =
             Engine.update_cell eng alice ~table:"t" ~row:0 ~col:0
               (Value.Int 100)
           in
           let* () =
             Engine.update_cell eng alice ~table:"t" ~row:1 ~col:1
               (Value.Int 101)
           in
           let* () =
             Engine.update_cell eng alice ~table:"t" ~row:2 ~col:2
               (Value.Int 102)
           in
           let* () =
             Engine.update_cell eng alice ~table:"t" ~row:4 ~col:0
               (Value.Int 103)
           in
           let* _row =
             Engine.insert_row eng alice ~table:"t"
               [| Value.Int 90; Value.Int 91; Value.Int 92 |]
           in
           Ok ()))
  in
  let c40 = cell env 4 0 and c51 = cell env 5 1 and c62 = cell env 6 2 in
  let b2, _ =
    ok
      (Engine.complex_op eng alice (fun () ->
           let* () =
             (* tracked since the first commit; updated again in the
                same batch its aggregate consumer is staged in *)
             Engine.update_cell eng alice ~table:"t" ~row:4 ~col:0
               (Value.Int 200)
           in
           let* b1 = Engine.aggregate_objects eng alice [ c40; c51 ] in
           Engine.aggregate_objects eng alice [ b1; c62 ]))
  in
  let _b3, _ =
    ok
      (Engine.complex_op eng alice (fun () ->
           Engine.aggregate_objects eng alice [ b2; cell env 7 2 ]))
  in
  ok (Engine.update_cell env.eng env.alice ~table:"t" ~row:7 ~col:1 (Value.Int 300))

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

type fingerprint = { records : string; root : string; wal_bytes : string }

let fingerprint env =
  let records =
    String.concat "\n"
      (List.map Record.encoded (Provstore.all (Engine.provstore env.eng)))
  in
  let root = Engine.root_hash env.eng in
  Wal.close env.wal;
  let wal_bytes = read_file env.wal_path in
  { records; root; wal_bytes }

let cleanup env =
  (try Sys.remove env.wal_path with Sys_error _ -> ());
  try Unix.rmdir env.dir with Unix.Unix_error _ -> ()

let run_sequential () =
  let env = make_env "seq" in
  workload env;
  let fp = fingerprint env in
  cleanup env;
  fp

let run_pooled ?arm domains =
  let pool = Pool.create ~domains () in
  let env = make_env ~pool (Printf.sprintf "pool%d" domains) in
  (match arm with Some f -> f () | None -> ());
  workload env;
  Fault.reset ();
  let m = Engine.total_metrics env.eng in
  let fp = fingerprint env in
  cleanup env;
  Pool.shutdown pool;
  (fp, m)

let check_identical tag (a : fingerprint) (b : fingerprint) =
  Alcotest.(check string) (tag ^ ": merkle root") a.root b.root;
  Alcotest.(check string)
    (tag ^ ": record bytes (sha256)")
    (Tep_crypto.Sha256.hex a.records)
    (Tep_crypto.Sha256.hex b.records);
  Alcotest.(check bool) (tag ^ ": record bytes") true (a.records = b.records);
  Alcotest.(check string)
    (tag ^ ": wal bytes (sha256)")
    (Tep_crypto.Sha256.hex a.wal_bytes)
    (Tep_crypto.Sha256.hex b.wal_bytes);
  Alcotest.(check bool) (tag ^ ": wal bytes") true (a.wal_bytes = b.wal_bytes)

let test_pooled_identical () =
  let seq = run_sequential () in
  Alcotest.(check bool) "workload emitted records" true (seq.records <> "");
  List.iter
    (fun domains ->
      let fp, m = run_pooled domains in
      check_identical (Printf.sprintf "%d domains" domains) seq fp;
      Alcotest.(check bool) "sign times recorded" true
        (m.Engine.sign_s > 0. && m.Engine.sign_cpu_s > 0.))
    [ 2; 4 ]

(* TEP_DOMAINS is how deployments size the pool; the CI gate sets it
   to 4 and this case must follow it. *)
let test_default_domains_identical () =
  let seq = run_sequential () in
  let fp, _ = run_pooled (Pool.default_domains ()) in
  check_identical "default domains" seq fp

(* A Delay inside the signing stage stalls one signer while the rest
   of the fan-out completes — slot-indexed result placement must keep
   the output byte-identical anyway. *)
let test_delay_failpoint_identical () =
  let seq = run_sequential () in
  let fp, _ =
    run_pooled 4 ~arm:(fun () ->
        Fault.arm ~after:3 "engine.commit.sign" (Fault.Delay 0.02))
  in
  check_identical "delayed signer" seq fp

(* The failpoint actually sits on the signing path: a Crash armed on
   it must abort the commit before anything reaches the provstore or
   the WAL. *)
let test_crash_failpoint_aborts_commit () =
  let env = make_env "crash" in
  Fault.arm "engine.commit.sign" Fault.Crash_point;
  (match
     Engine.update_cell env.eng env.alice ~table:"t" ~row:0 ~col:0
       (Value.Int 1)
   with
  | exception Fault.Crash _ -> ()
  | Ok _ -> Alcotest.fail "commit should have crashed in the signer"
  | Error e -> Alcotest.fail ("unexpected error instead of crash: " ^ e));
  Fault.reset ();
  Alcotest.(check int) "nothing appended" 0
    (List.length (Provstore.all (Engine.provstore env.eng)));
  Wal.close env.wal;
  (* only WAL frames from the relational pre-commit log may exist; no
     commit marker means recovery rolls them back *)
  let entries = try Wal.read_file env.wal_path with _ -> [] in
  cleanup env;
  Alcotest.(check bool) "no commit marker" true
    (not (List.exists (function Wal.Commit _ -> true | _ -> false) entries))

let () =
  Alcotest.run "sign-parallel"
    [
      ( "determinism",
        [
          Alcotest.test_case "pooled = sequential (2,4 domains)" `Quick
            test_pooled_identical;
          Alcotest.test_case "TEP_DOMAINS pool = sequential" `Quick
            test_default_domains_identical;
          Alcotest.test_case "delayed signer = sequential" `Quick
            test_delay_failpoint_identical;
          Alcotest.test_case "crash in signer aborts commit" `Quick
            test_crash_failpoint_aborts_commit;
        ] );
    ]
