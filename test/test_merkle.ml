(* Merkle hashing: definition agreement, cache behaviour, economical vs
   basic, sensitivity properties. *)
open Tep_store
open Tep_tree

let algo = Tep_crypto.Digest_algo.SHA1
let ok = function Ok v -> v | Error e -> Alcotest.fail e
let iv i = Value.Int i

let build_chain f depth =
  let root = ok (Forest.insert f (iv 0)) in
  let rec go parent d acc =
    if d = 0 then List.rev acc
    else
      let n = ok (Forest.insert ~parent f (iv d)) in
      go n (d - 1) (n :: acc)
  in
  (root, go root depth [])

let test_leaf_hash_definition () =
  (* leaf hash depends on both oid and value *)
  let h1 = Merkle.hash_subtree algo (Subtree.atom (Oid.of_int 1) (iv 5)) in
  let h2 = Merkle.hash_subtree algo (Subtree.atom (Oid.of_int 2) (iv 5)) in
  let h3 = Merkle.hash_subtree algo (Subtree.atom (Oid.of_int 1) (iv 6)) in
  Alcotest.(check bool) "oid matters" false (String.equal h1 h2);
  Alcotest.(check bool) "value matters" false (String.equal h1 h3);
  Alcotest.(check int) "sha1 width" 20 (String.length h1)

let test_hash_value_vs_subtree () =
  (* atom-frame hash (h(A,val) of Section 3) is distinct from node
     hash but also deterministic *)
  let a = Merkle.hash_value algo (Oid.of_int 1) (iv 5) in
  let b = Merkle.hash_value algo (Oid.of_int 1) (iv 5) in
  Alcotest.(check string) "deterministic" a b

let test_cache_agrees_with_pure () =
  let f = Forest.create () in
  let root = ok (Forest.insert f (Value.Text "r")) in
  let a = ok (Forest.insert ~parent:root f (iv 1)) in
  let _ = ok (Forest.insert ~parent:a f (iv 2)) in
  let _ = ok (Forest.insert ~parent:root f (iv 3)) in
  let cache = Merkle.create_cache algo f in
  let pure = Merkle.hash_subtree algo (ok (Forest.subtree f root)) in
  Alcotest.(check string) "economical" pure (ok (Merkle.hash cache root));
  Alcotest.(check string) "basic" pure (ok (Merkle.hash_basic cache root))

let test_cache_invalidation_path () =
  let f = Forest.create () in
  let root, chain = build_chain f 10 in
  let cache = Merkle.create_cache algo f in
  let _ = ok (Merkle.hash cache root) in
  Merkle.reset_stats cache;
  (* update the deepest node: exactly depth+1 nodes re-hashed *)
  let deepest = List.nth chain 9 in
  ignore (ok (Forest.update f deepest (iv 999)));
  let _ = ok (Merkle.hash cache root) in
  let stats = Merkle.stats cache in
  Alcotest.(check int) "path only" 11 stats.Merkle.nodes_hashed;
  (* second hash with no changes: zero work *)
  Merkle.reset_stats cache;
  let _ = ok (Merkle.hash cache root) in
  Alcotest.(check int) "warm cache" 0 (Merkle.stats cache).Merkle.nodes_hashed

let test_basic_rehashes_everything () =
  let f = Forest.create () in
  let root, _ = build_chain f 10 in
  let cache = Merkle.create_cache algo f in
  let _ = ok (Merkle.hash cache root) in
  Merkle.reset_stats cache;
  let _ = ok (Merkle.hash_basic cache root) in
  Alcotest.(check int) "all nodes" 11 (Merkle.stats cache).Merkle.nodes_hashed

let test_update_changes_root_hash () =
  let f = Forest.create () in
  let root, chain = build_chain f 5 in
  let cache = Merkle.create_cache algo f in
  let h0 = ok (Merkle.hash cache root) in
  ignore (ok (Forest.update f (List.nth chain 2) (iv 77)));
  let h1 = ok (Merkle.hash cache root) in
  Alcotest.(check bool) "changed" false (String.equal h0 h1)

let test_structure_changes_hash () =
  let f = Forest.create () in
  let root = ok (Forest.insert f (iv 0)) in
  let cache = Merkle.create_cache algo f in
  let h0 = ok (Merkle.hash cache root) in
  let leaf = ok (Forest.insert ~parent:root f (iv 1)) in
  let h1 = ok (Merkle.hash cache root) in
  Alcotest.(check bool) "insert changes" false (String.equal h0 h1);
  ignore (ok (Forest.delete f leaf));
  let h2 = ok (Merkle.hash cache root) in
  Alcotest.(check string) "delete restores" (Tep_crypto.Digest_algo.to_hex h0)
    (Tep_crypto.Digest_algo.to_hex h2)

let test_missing_node () =
  let f = Forest.create () in
  let cache = Merkle.create_cache algo f in
  match Merkle.hash cache (Oid.of_int 5) with
  | Ok _ -> Alcotest.fail "hashed missing node"
  | Error _ -> ()

let test_clear () =
  let f = Forest.create () in
  let root, _ = build_chain f 4 in
  let cache = Merkle.create_cache algo f in
  let _ = ok (Merkle.hash cache root) in
  Merkle.clear cache;
  Merkle.reset_stats cache;
  let _ = ok (Merkle.hash cache root) in
  Alcotest.(check int) "recomputed after clear" 5
    (Merkle.stats cache).Merkle.nodes_hashed

(* Property: for random small trees, the hash distinguishes any single
   value mutation. *)
let gen_tree =
  QCheck2.Gen.(
    let* n = int_range 1 12 in
    let* values = list_size (return n) (int_range 0 100) in
    return values)

let prop_mutation_detected =
  QCheck2.Test.make ~name:"single mutation changes root hash" ~count:100
    QCheck2.Gen.(pair gen_tree (int_range 0 1000))
    (fun (values, pick) ->
      let f = Forest.create () in
      let root = ok (Forest.insert f (iv (-1))) in
      let nodes =
        List.map
          (fun v ->
            (* random-ish shape: attach to a previous node *)
            ok (Forest.insert ~parent:root f (iv v)))
          values
      in
      let cache = Merkle.create_cache algo f in
      let h0 = ok (Merkle.hash cache root) in
      let victim = List.nth nodes (pick mod List.length nodes) in
      let old = ok (Forest.value f victim) in
      ignore (ok (Forest.update f victim (Value.Int 1_000_000)));
      let h1 = ok (Merkle.hash cache root) in
      ignore (ok (Forest.update f victim old));
      let h2 = ok (Merkle.hash cache root) in
      (not (String.equal h0 h1)) && String.equal h0 h2)

(* Parallel hashing must agree with the sequential code path on a
   forest big enough to clear [par_threshold], cold cache and warm,
   Basic and Economical, and after a dirty-path update. *)
let test_parallel_matches_sequential () =
  let build () =
    let f = Forest.create () in
    let root = ok (Forest.insert f (Value.Text "r")) in
    let leaves = ref [] in
    for i = 0 to 29 do
      let mid = ok (Forest.insert ~parent:root f (iv i)) in
      for j = 0 to 9 do
        leaves := ok (Forest.insert ~parent:mid f (iv ((100 * i) + j))) :: !leaves
      done
    done;
    (f, root, List.rev !leaves)
  in
  let f, root, leaves = build () in
  Alcotest.(check bool) "forest clears par_threshold" true
    (Forest.node_count f >= Merkle.par_threshold);
  let seq_cache = Merkle.create_cache algo f in
  let seq_cold = ok (Merkle.hash seq_cache root) in
  let seq_nodes = (Merkle.stats seq_cache).Merkle.nodes_hashed in
  List.iter
    (fun domains ->
      let pool = Tep_parallel.Pool.create ~domains () in
      let name fmt = Printf.sprintf fmt domains in
      let cache = Merkle.create_cache algo f in
      Alcotest.(check string)
        (name "cold economical @%d") seq_cold
        (ok (Merkle.hash ~pool cache root));
      Alcotest.(check int)
        (name "same nodes hashed @%d") seq_nodes
        (Merkle.stats cache).Merkle.nodes_hashed;
      (* warm: parallel pass over a fully-cached tree is free *)
      Merkle.reset_stats cache;
      Alcotest.(check string)
        (name "warm @%d") seq_cold (ok (Merkle.hash ~pool cache root));
      Alcotest.(check int)
        (name "warm zero work @%d") 0
        (Merkle.stats cache).Merkle.nodes_hashed;
      (* basic mode re-hashes everything, in parallel too *)
      Alcotest.(check string)
        (name "basic @%d") seq_cold (ok (Merkle.hash_basic ~pool cache root));
      (* dirty path after an update *)
      let victim = List.nth leaves 123 in
      let old = ok (Forest.value f victim) in
      ignore (ok (Forest.update f victim (iv 424242)));
      let seq_dirty_cache = Merkle.create_cache algo f in
      let seq_dirty = ok (Merkle.hash seq_dirty_cache root) in
      Alcotest.(check string)
        (name "after update @%d") seq_dirty (ok (Merkle.hash ~pool cache root));
      Alcotest.(check bool) (name "update changed hash @%d") true
        (not (String.equal seq_cold seq_dirty));
      ignore (ok (Forest.update f victim old));
      Tep_parallel.Pool.shutdown pool)
    [ 1; 2; 4 ]

let () =
  Alcotest.run "merkle"
    [
      ( "unit",
        [
          Alcotest.test_case "leaf hash definition" `Quick
            test_leaf_hash_definition;
          Alcotest.test_case "hash_value" `Quick test_hash_value_vs_subtree;
          Alcotest.test_case "cache agrees with pure" `Quick
            test_cache_agrees_with_pure;
          Alcotest.test_case "invalidation path" `Quick
            test_cache_invalidation_path;
          Alcotest.test_case "basic rehashes all" `Quick
            test_basic_rehashes_everything;
          Alcotest.test_case "update changes root" `Quick
            test_update_changes_root_hash;
          Alcotest.test_case "structure changes hash" `Quick
            test_structure_changes_hash;
          Alcotest.test_case "missing node" `Quick test_missing_node;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "parallel matches sequential" `Quick
            test_parallel_matches_sequential;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_mutation_detected ]);
    ]
