(* Streaming hashing: agreement with the in-memory tree hash, bounded
   row-pull interface, error handling. *)
open Tep_store
open Tep_tree

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let build_db tables =
  let db = Database.create ~name:"sdb" in
  List.iter
    (fun (name, attrs, rows) ->
      let t =
        match Database.create_table db ~name (Schema.all_int
                 (List.init attrs (fun i -> Printf.sprintf "c%d" i))) with
        | Ok t -> t
        | Error e -> failwith e
      in
      for r = 0 to rows - 1 do
        ignore (Table.insert t (Array.init attrs (fun c -> Value.Int ((r * 31) + c))))
      done)
    tables;
  db

let tree_hash algo db =
  let f = Forest.create () in
  let m = Tree_view.build f db in
  Merkle.hash_subtree algo (ok (Forest.subtree f (Tree_view.root m)))

let test_agreement_cases () =
  List.iter
    (fun algo ->
      List.iter
        (fun tables ->
          let db = build_db tables in
          Alcotest.(check string)
            (Printf.sprintf "%s %d tables" (Tep_crypto.Digest_algo.name algo)
               (List.length tables))
            (Tep_crypto.Digest_algo.to_hex (tree_hash algo db))
            (Tep_crypto.Digest_algo.to_hex (Streaming.hash_database algo db)))
        [
          [];
          [ ("t", 1, 0) ];
          [ ("t", 3, 1) ];
          [ ("t", 2, 10) ];
          [ ("a", 2, 5); ("b", 4, 3) ];
          [ ("z", 1, 1); ("a", 1, 1) ] (* name order matters *);
        ])
    [ Tep_crypto.Digest_algo.SHA1; Tep_crypto.Digest_algo.SHA256 ]

let test_node_counts () =
  let db = build_db [ ("a", 2, 5); ("b", 4, 3) ] in
  let _, n = Streaming.hash_database_with_counts Tep_crypto.Digest_algo.SHA1 db in
  Alcotest.(check int) "matches Database.node_count" (Database.node_count db) n

let test_deleted_rows_affect_layout () =
  (* deleting a row changes the streamed hash *)
  let db = build_db [ ("t", 2, 5) ] in
  let h0 = Streaming.hash_database Tep_crypto.Digest_algo.SHA1 db in
  ignore (Table.delete (Database.get_table_exn db "t") 2);
  let h1 = Streaming.hash_database Tep_crypto.Digest_algo.SHA1 db in
  Alcotest.(check bool) "changed" false (String.equal h0 h1)

let test_hash_rows_interface () =
  let algo = Tep_crypto.Digest_algo.SHA1 in
  let db = build_db [ ("t", 2, 4) ] in
  let tbl = Database.get_table_exn db "t" in
  let rows = ref (Table.rows tbl) in
  let pull () =
    match !rows with
    | [] -> None
    | r :: rest ->
        rows := rest;
        Some (r.Table.id, r.Table.cells)
  in
  let h, nodes =
    Streaming.hash_rows algo ~schema_arity:2 ~table_oid:1 ~table_name:"t"
      ~row_count:4 pull
  in
  Alcotest.(check int) "nodes" (1 + (4 * 3)) nodes;
  (* must equal the table subtree hash from the forest view *)
  let f = Forest.create () in
  let m = Tree_view.build f db in
  let toid = Option.get (Tree_view.table_oid m "t") in
  Alcotest.(check string)
    "table hash"
    (Tep_crypto.Digest_algo.to_hex (Merkle.hash_subtree algo (ok (Forest.subtree f toid))))
    (Tep_crypto.Digest_algo.to_hex h)

let test_row_count_mismatch () =
  let algo = Tep_crypto.Digest_algo.SHA1 in
  let pull_none () = None in
  (try
     ignore
       (Streaming.hash_rows algo ~schema_arity:1 ~table_oid:1 ~table_name:"t"
          ~row_count:2 pull_none);
     Alcotest.fail "short iterator accepted"
   with Invalid_argument _ -> ());
  let extra = ref 3 in
  let pull_many () =
    if !extra > 0 then begin
      decr extra;
      Some (0, [| Value.Int 0 |])
    end
    else None
  in
  try
    ignore
      (Streaming.hash_rows algo ~schema_arity:1 ~table_oid:1 ~table_name:"t"
         ~row_count:1 pull_many);
    Alcotest.fail "long iterator accepted"
  with Invalid_argument _ -> ()

let test_large_streaming_consistency () =
  (* a moderately large table to exercise multi-block hashing *)
  let db = build_db [ ("big", 3, 500) ] in
  Alcotest.(check string)
    "large agreement"
    (Tep_crypto.Digest_algo.to_hex (tree_hash Tep_crypto.Digest_algo.SHA256 db))
    (Tep_crypto.Digest_algo.to_hex
       (Streaming.hash_database Tep_crypto.Digest_algo.SHA256 db))

let () =
  Alcotest.run "streaming"
    [
      ( "unit",
        [
          Alcotest.test_case "agreement" `Quick test_agreement_cases;
          Alcotest.test_case "node counts" `Quick test_node_counts;
          Alcotest.test_case "deletion changes hash" `Quick
            test_deleted_rows_affect_layout;
          Alcotest.test_case "hash_rows" `Quick test_hash_rows_interface;
          Alcotest.test_case "row_count mismatch" `Quick
            test_row_count_mismatch;
          Alcotest.test_case "large consistency" `Quick
            test_large_streaming_consistency;
        ] );
    ]
