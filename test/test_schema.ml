(* Schemas: construction, validation, codec. *)
open Tep_store

let mk name ty nullable = { Schema.name; ty; nullable }

let patient_schema =
  Schema.make
    [
      mk "Age" Value.TInt false;
      mk "Name" Value.TText false;
      mk "Endocrine" Value.TFloat true;
    ]

let test_make_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Schema.make: no columns")
    (fun () -> ignore (Schema.make []));
  Alcotest.check_raises "dup"
    (Invalid_argument "Schema.make: duplicate column a") (fun () ->
      ignore (Schema.make [ mk "a" Value.TInt false; mk "a" Value.TInt false ]));
  Alcotest.check_raises "empty name"
    (Invalid_argument "Schema.make: empty column name") (fun () ->
      ignore (Schema.make [ mk "" Value.TInt false ]))

let test_lookup () =
  Alcotest.(check int) "arity" 3 (Schema.arity patient_schema);
  Alcotest.(check (option int)) "Age" (Some 0) (Schema.column_index patient_schema "Age");
  Alcotest.(check (option int)) "Endocrine" (Some 2) (Schema.column_index patient_schema "Endocrine");
  Alcotest.(check (option int)) "missing" None (Schema.column_index patient_schema "zzz");
  Alcotest.(check string) "column_at" "Name" (Schema.column_at patient_schema 1).Schema.name

let valid = [| Value.Int 30; Value.Text "x"; Value.Float 1.5 |]

let test_validate_ok () =
  (match Schema.validate_row patient_schema valid with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Schema.validate_row patient_schema [| Value.Int 1; Value.Text "y"; Value.Null |] with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("nullable null rejected: " ^ e)

let test_validate_errors () =
  let expect_err row msg =
    match Schema.validate_row patient_schema row with
    | Ok () -> Alcotest.fail ("expected failure: " ^ msg)
    | Error _ -> ()
  in
  expect_err [| Value.Int 1 |] "arity";
  expect_err [| Value.Text "no"; Value.Text "x"; Value.Null |] "type";
  expect_err [| Value.Null; Value.Text "x"; Value.Null |] "non-nullable null"

let test_codec () =
  let buf = Buffer.create 64 in
  Schema.encode buf patient_schema;
  let s, off = Schema.decode (Buffer.contents buf) 0 in
  Alcotest.(check int) "consumed" (Buffer.length buf) off;
  Alcotest.(check string) "same" (Schema.to_string patient_schema) (Schema.to_string s)

let test_all_int () =
  let s = Schema.all_int [ "a"; "b" ] in
  Alcotest.(check int) "arity" 2 (Schema.arity s);
  match Schema.validate_row s [| Value.Int 1; Value.Null |] with
  | Ok () -> Alcotest.fail "all_int columns must be non-nullable"
  | Error _ -> ()

let test_to_string () =
  Alcotest.(check string)
    "render" "Age int not null, Name text not null, Endocrine float"
    (Schema.to_string patient_schema)

let () =
  Alcotest.run "schema"
    [
      ( "unit",
        [
          Alcotest.test_case "make errors" `Quick test_make_errors;
          Alcotest.test_case "lookup" `Quick test_lookup;
          Alcotest.test_case "validate ok" `Quick test_validate_ok;
          Alcotest.test_case "validate errors" `Quick test_validate_errors;
          Alcotest.test_case "codec" `Quick test_codec;
          Alcotest.test_case "all_int" `Quick test_all_int;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
    ]
