(* The tamper operators themselves: each produces the intended
   manipulation (and nothing else). *)
open Tep_store
open Tep_tree
open Tep_core

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let fixture () =
  let drbg = Tep_crypto.Drbg.create ~seed:"test-tamper" in
  let ca = Tep_crypto.Pki.create_ca ~name:"CA" drbg in
  let dir = Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca) in
  let mk name =
    let p = Participant.create ~ca ~name drbg in
    Participant.Directory.register dir p;
    p
  in
  let alice = mk "alice" and eve = mk "eve" in
  let s = Atomic.create dir in
  let a, _ = Atomic.insert s alice (Value.Int 1) in
  ignore (ok (Atomic.update s alice a (Value.Int 2)));
  ignore (ok (Atomic.update s alice a (Value.Int 3)));
  let data, records = ok (Atomic.deliver s a) in
  (dir, s, alice, eve, a, data, records)

let test_modify_output_hash () =
  let _, _, _, _, _, _, records = fixture () in
  let t = Tamper.modify_output_hash ~idx:1 records in
  Alcotest.(check int) "same length" (List.length records) (List.length t);
  List.iteri
    (fun i (r : Record.t) ->
      let orig = List.nth records i in
      if i = 1 then
        Alcotest.(check bool) "hash changed" false
          (String.equal r.Record.output_hash orig.Record.output_hash)
      else
        Alcotest.(check bool) "others untouched" true
          (String.equal r.Record.output_hash orig.Record.output_hash))
    t

let test_modify_embedded_value () =
  let _, _, _, _, _, _, records = fixture () in
  let t = Tamper.modify_embedded_value ~idx:0 (Value.Int 777) records in
  Alcotest.(check bool) "value swapped" true
    ((List.nth t 0).Record.output_value = Some (Value.Int 777))

let test_reattribute () =
  let _, _, _, _, _, _, records = fixture () in
  let t = Tamper.reattribute ~idx:2 ~to_:"mallory" records in
  Alcotest.(check string) "renamed" "mallory" (List.nth t 2).Record.participant;
  Alcotest.(check string) "checksum kept" (List.nth records 2).Record.checksum
    (List.nth t 2).Record.checksum

let test_resign_as () =
  let dir, _, _, eve, _, _, records = fixture () in
  let t = Tamper.resign_as ~idx:1 ~attacker:eve records in
  let forged = List.nth t 1 in
  Alcotest.(check string) "signed by eve" "eve" forged.Record.participant;
  (* eve's signature on the altered record IS valid in isolation *)
  (match Checksum.verify_record dir forged with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("insider signature should verify: " ^ e))

let test_remove () =
  let _, _, _, _, _, _, records = fixture () in
  let t = Tamper.remove ~idx:1 records in
  Alcotest.(check int) "shorter" (List.length records - 1) (List.length t)

let test_insert_forged () =
  let dir, _, _, eve, _, _, records = fixture () in
  let t = ok (Tamper.insert_forged ~after:0 ~attacker:eve records) in
  Alcotest.(check int) "longer" (List.length records + 1) (List.length t);
  let forged = List.nth t 1 in
  Alcotest.(check string) "attacker owns it" "eve" forged.Record.participant;
  (match Checksum.verify_record dir forged with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("forged record self-consistent: " ^ e));
  match Tamper.insert_forged ~after:99 ~attacker:eve records with
  | Ok _ -> Alcotest.fail "bad index accepted"
  | Error _ -> ()

let test_tamper_data_value () =
  let _, _, _, _, _, data, _ = fixture () in
  let t = Tamper.tamper_data_value data in
  Alcotest.(check bool) "changed" false (Subtree.equal data t);
  Alcotest.(check bool) "same oid" true (Oid.equal data.Subtree.oid t.Subtree.oid)

let test_collude_remove_span_errors () =
  let _, _, alice, _, _, _, records = fixture () in
  let resign n = if n = "alice" then Some alice else None in
  (match Tamper.collude_remove_span ~first:2 ~last:1 ~resign records with
  | Ok _ -> Alcotest.fail "inverted span accepted"
  | Error _ -> ());
  (match Tamper.collude_remove_span ~first:0 ~last:99 ~resign records with
  | Ok _ -> Alcotest.fail "oob accepted"
  | Error _ -> ());
  match Tamper.collude_remove_span ~first:0 ~last:2 ~resign:(fun _ -> None) records with
  | Ok _ -> Alcotest.fail "missing key accepted"
  | Error _ -> ()

let test_collude_remove_span_bridges () =
  let dir, _, alice, _, _, _, records = fixture () in
  let resign n = if n = "alice" then Some alice else None in
  let t = ok (Tamper.collude_remove_span ~first:0 ~last:2 ~resign records) in
  Alcotest.(check int) "middle removed" 2 (List.length t);
  let bridged = List.nth t 1 in
  (* the bridge is internally consistent (correct signature, chains to
     record 0) — the *boundary* of the paper's guarantee *)
  (match Checksum.verify_record dir bridged with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("bridge should self-verify: " ^ e));
  Alcotest.(check bool) "chains to first" true
    (bridged.Record.prev_checksums = [ (List.nth t 0).Record.checksum ])

(* Documented boundary: with NO non-colluding successor and the data
   matching the bridged final record, collusion removal of the middle
   is undetectable (the paper only guarantees detection for records
   with an immediate successor). *)
let test_collusion_boundary_documented () =
  let dir, s, alice, _, a, _, _ = fixture () in
  let data, records = ok (Atomic.deliver s a) in
  let resign n = if n = "alice" then Some alice else None in
  let t = ok (Tamper.collude_remove_span ~first:0 ~last:2 ~resign records) in
  let report = Verifier.verify ~algo:(Atomic.algo s) ~directory:dir ~data t in
  (* all three records were alice's: a full-insider rewrite of her own
     history with no outside witnesses passes — as the paper scopes it *)
  Alcotest.(check bool) "boundary case passes" true (Verifier.ok report)

let () =
  Alcotest.run "tamper"
    [
      ( "operators",
        [
          Alcotest.test_case "modify_output_hash" `Quick
            test_modify_output_hash;
          Alcotest.test_case "modify_embedded_value" `Quick
            test_modify_embedded_value;
          Alcotest.test_case "reattribute" `Quick test_reattribute;
          Alcotest.test_case "resign_as" `Quick test_resign_as;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "insert_forged" `Quick test_insert_forged;
          Alcotest.test_case "tamper_data_value" `Quick
            test_tamper_data_value;
          Alcotest.test_case "collusion errors" `Quick
            test_collude_remove_span_errors;
          Alcotest.test_case "collusion bridge" `Quick
            test_collude_remove_span_bridges;
          Alcotest.test_case "collusion boundary" `Quick
            test_collusion_boundary_documented;
        ] );
    ]
