(* Primality testing and prime generation. *)
open Tep_bignum

let drbg = Tep_crypto.Drbg.create ~seed:"test-prime"
let src = Tep_crypto.Drbg.byte_source drbg

let known_primes =
  [ 2; 3; 5; 7; 11; 13; 97; 541; 7919; 104729; 999983; 2147483647 ]

let known_composites =
  [ 4; 6; 9; 15; 91; 561 (* Carmichael *); 41041 (* Carmichael *); 999982 ]

let test_small_primes_table () =
  Alcotest.(check int) "count below 1000" 168 (Array.length Prime.small_primes);
  Alcotest.(check int) "first" 2 Prime.small_primes.(0);
  Alcotest.(check int) "last" 997 Prime.small_primes.(167)

let test_known_primes () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (string_of_int p) true
        (Prime.is_probably_prime src (Nat.of_int p)))
    known_primes

let test_known_composites () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (string_of_int c) false
        (Prime.is_probably_prime src (Nat.of_int c)))
    known_composites;
  Alcotest.(check bool) "0" false (Prime.is_probably_prime src Nat.zero);
  Alcotest.(check bool) "1" false (Prime.is_probably_prime src Nat.one)

let test_big_primes () =
  (* Mersenne primes 2^89-1, 2^107-1, 2^127-1 and a neighbour. *)
  List.iter
    (fun k ->
      let m = Nat.sub (Nat.shift_left Nat.one k) Nat.one in
      Alcotest.(check bool)
        (Printf.sprintf "2^%d-1" k)
        true
        (Prime.is_probably_prime src m))
    [ 89; 107; 127 ];
  let not_mersenne = Nat.sub (Nat.shift_left Nat.one 97) Nat.one in
  Alcotest.(check bool) "2^97-1 composite" false
    (Prime.is_probably_prime src not_mersenne)

let test_random_below () =
  let bound = Nat.of_int 1000 in
  for _ = 1 to 200 do
    let x = Prime.random_below src bound in
    Alcotest.(check bool) "in range" true (Nat.compare x bound < 0)
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prime.random_below: zero bound") (fun () ->
      ignore (Prime.random_below src Nat.zero))

let test_random_bits () =
  for k = 1 to 64 do
    let x = Prime.random_bits src k in
    Alcotest.(check bool)
      (Printf.sprintf "bits <= %d" k)
      true
      (Nat.num_bits x <= k)
  done

let test_generate () =
  List.iter
    (fun bits ->
      let p = Prime.generate src ~bits in
      Alcotest.(check int) "exact bit length" bits (Nat.num_bits p);
      Alcotest.(check bool) "top two bits set" true (Nat.testbit p (bits - 2));
      Alcotest.(check bool) "odd" true (not (Nat.is_even p));
      Alcotest.(check bool) "prime" true (Prime.is_probably_prime src p))
    [ 64; 128; 256 ];
  Alcotest.check_raises "too small"
    (Invalid_argument "Prime.generate: need at least 8 bits") (fun () ->
      ignore (Prime.generate src ~bits:4))

let test_product_width () =
  (* Top-two-bits guarantee: p*q of two k-bit primes has 2k bits. *)
  for _ = 1 to 5 do
    let p = Prime.generate src ~bits:96 and q = Prime.generate src ~bits:96 in
    Alcotest.(check int) "product width" 192 (Nat.num_bits (Nat.mul p q))
  done

let () =
  Alcotest.run "prime"
    [
      ( "unit",
        [
          Alcotest.test_case "sieve table" `Quick test_small_primes_table;
          Alcotest.test_case "known primes" `Quick test_known_primes;
          Alcotest.test_case "known composites" `Quick test_known_composites;
          Alcotest.test_case "big primes" `Quick test_big_primes;
          Alcotest.test_case "random_below" `Quick test_random_below;
          Alcotest.test_case "random_bits" `Quick test_random_bits;
          Alcotest.test_case "generate" `Quick test_generate;
          Alcotest.test_case "product width" `Quick test_product_width;
        ] );
    ]
