(* Crash-point enumeration: simulate a process crash at EVERY
   registered failpoint site (WAL append/flush/sync/truncate, snapshot
   open/write/sync/rename), then recover and assert that

   - recovery succeeds from what is on disk,
   - the recovered root hash matches the last committed provenance
     record (report.hash_verified),
   - recipient-side verification of the root object passes, and
   - the recovered engine accepts new operations.

   Torn-write and bit-flip variants exercise the salvage path the same
   way.  Everything is deterministic: participants come from a fixed
   DRBG seed and fault ordinals are explicit. *)
open Tep_store
open Tep_core
module Fault = Tep_fault.Fault

let ok = function Ok v -> v | Error e -> Alcotest.fail e

(* One CA / participant set for every scenario (keygen is the slow
   part and the directory is read-only for the engine). *)
let drbg = Tep_crypto.Drbg.create ~seed:"crash-harness"
let ca = Tep_crypto.Pki.create_ca ~name:"CA" drbg

let directory =
  Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca)

let alice = Participant.create ~ca ~name:"alice" drbg
let () = Participant.Directory.register directory alice

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_workdir f =
  let dir = Filename.temp_file "tep_crash" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Fault.reset ();
      try rm_rf dir with Sys_error _ -> ())
    (fun () -> f dir)

(* Phase A: build a baseline workload and checkpoint it cleanly, so
   every scenario starts from a recoverable on-disk state. *)
let build_baseline dir =
  let wal = Wal.open_file (Filename.concat dir "wal.log") in
  let db = Database.create ~name:"crashdb" in
  let eng = Engine.create ~wal ~directory db in
  ok (Engine.create_table eng alice ~name:"t" (Schema.all_int [ "a"; "b" ]));
  for i = 1 to 3 do
    ignore (ok (Engine.insert_row eng alice ~table:"t" [| Value.Int i; Value.Int (i * i) |]))
  done;
  ignore (ok (Recovery.checkpoint ~dir ~wal eng));
  (* one committed-but-not-checkpointed op, so recovery always has a
     WAL tail to replay *)
  ignore (ok (Engine.insert_row eng alice ~table:"t" [| Value.Int 10; Value.Int 100 |]));
  Wal.close wal

(* Phase B: recover, operate, checkpoint mid-script, operate more.
   With a fault armed this can die (Fault.Crash) at any point —
   including inside recovery itself. *)
let faulted_workload dir =
  let eng, wal, _report = ok (Recovery.recover ~dir ~directory ()) in
  let r1 = ok (Engine.insert_row eng alice ~table:"t" [| Value.Int 20; Value.Int 400 |]) in
  ok (Engine.update_cell eng alice ~table:"t" ~row:r1 ~col:1 (Value.Int 401));
  ignore (ok (Recovery.checkpoint ~dir ~wal eng));
  let r2 = ok (Engine.insert_row eng alice ~table:"t" [| Value.Int 30; Value.Int 900 |]) in
  ok (Engine.delete_row eng alice ~table:"t" r2);
  ok (Engine.update_cell eng alice ~table:"t" ~row:r1 ~col:0 (Value.Int 21))

(* After the crash (or clean completion) the disk state must recover
   to a verified engine that accepts new work. *)
let assert_recoverable name dir =
  Fault.reset ();
  let eng, wal, report = ok (Recovery.recover ~dir ~directory ()) in
  if not report.Recovery.hash_verified then
    Alcotest.failf "%s: root hash cross-check failed:@ %a" name
      Recovery.pp_report report;
  let vreport = ok (Engine.verify_object eng (Engine.root_oid eng)) in
  Alcotest.(check bool) (name ^ ": root verifies") true (Verifier.ok vreport);
  let r = ok (Engine.insert_row eng alice ~table:"t" [| Value.Int 77; Value.Int 5929 |]) in
  ok (Engine.delete_row eng alice ~table:"t" r);
  Wal.close wal

let run_scenario name arm_faults =
  with_workdir (fun dir ->
      build_baseline dir;
      Fault.seed name;
      arm_faults ();
      let crashed =
        match faulted_workload dir with
        | () -> false
        | exception Fault.Crash _ -> true
        (* an armed Transient that outlives the retry budget surfaces
           as Error -> Alcotest.fail; those are not armed here *)
      in
      ignore crashed;
      assert_recoverable name dir)

(* Crash at every registered site, at the first and a later hit.  The
   site list is taken from the registry itself so a newly added
   failpoint is covered automatically. *)
let test_crash_every_site () =
  let sites = Fault.sites () in
  Alcotest.(check bool)
    (Printf.sprintf "failpoints registered (%d)" (List.length sites))
    true
    (List.length sites >= 10);
  List.iter
    (fun site ->
      List.iter
        (fun after ->
          let name = Printf.sprintf "crash:%s:#%d" site after in
          run_scenario name (fun () -> Fault.arm ~after site Fault.Crash_point))
        [ 1; 3 ])
    sites

(* Torn writes at the data-shaping sites: a prefix of the frame (or
   snapshot) reaches the disk, then the process dies. *)
let test_torn_writes () =
  List.iter
    (fun (site, frac) ->
      let name = Printf.sprintf "torn:%s:%.2f" site frac in
      run_scenario name (fun () -> Fault.arm site (Fault.Torn_write frac)))
    [
      ("wal.append.frame", 0.3);
      ("wal.append.frame", 0.9);
      ("wal.truncate.write", 0.5);
      ("snapshot.save.write", 0.5);
    ]

(* Bit flips: the write completes but one bit is wrong.  The WAL frame
   CRC (or snapshot trailer / checkpoint trailer) must catch it and
   recovery must carry on from the surviving state. *)
let test_bit_flips () =
  List.iter
    (fun site ->
      let name = "flip:" ^ site in
      run_scenario name (fun () -> Fault.arm site Fault.Bit_flip))
    [ "wal.append.frame"; "wal.truncate.write"; "snapshot.save.write" ]

(* Transient I/O errors within the retry budget are absorbed: the
   workload completes as if nothing happened. *)
let test_transients_absorbed () =
  List.iter
    (fun site ->
      run_scenario ("transient:" ^ site)
        (fun () -> Fault.arm site (Fault.Transient 2)))
    [ "wal.append.frame"; "wal.flush"; "snapshot.save.write" ]

(* The newest checkpoint generation is corrupted on disk: recovery
   must fall back to the previous generation and report the
   rejection. *)
let test_generation_fallback () =
  with_workdir (fun dir ->
      build_baseline dir;
      (* a second generation so there is something to fall back to *)
      let eng, wal, _ = ok (Recovery.recover ~dir ~directory ()) in
      let r = ok (Engine.insert_row eng alice ~table:"t" [| Value.Int 50; Value.Int 2500 |]) in
      ignore r;
      let gen = ok (Recovery.checkpoint ~dir ~wal eng) in
      Wal.close wal;
      (* smash the newest generation file *)
      let path = Recovery.generation_path ~dir gen in
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let b = Bytes.of_string s in
      let mid = Bytes.length b / 2 in
      Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 1));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      let eng2, wal2, report = ok (Recovery.recover ~dir ~directory ()) in
      Alcotest.(check int) "one rejected generation" 1
        (List.length report.Recovery.rejected);
      Alcotest.(check bool) "older generation used" true
        (report.Recovery.generation < gen);
      (* the fallback generation is older than the smashed one, so the
         row committed after it is gone — but the state still verifies *)
      Alcotest.(check bool) "hash verified" true report.Recovery.hash_verified;
      let vreport = ok (Engine.verify_object eng2 (Engine.root_oid eng2)) in
      Alcotest.(check bool) "root verifies" true (Verifier.ok vreport);
      Wal.close wal2)

(* Uncommitted WAL frames (no commit marker) are rolled back, and a
   second recovery does not resurrect them. *)
let test_uncommitted_rollback () =
  with_workdir (fun dir ->
      build_baseline dir;
      let eng, wal, _ = ok (Recovery.recover ~dir ~directory ()) in
      let rows_before =
        Table.row_count (Database.get_table_exn (Engine.backend eng) "t")
      in
      (* forge a mid-operation crash: relational frames with no commit *)
      (match Wal.append wal (Wal.Insert_row ("t", 99, [| Value.Int 1; Value.Int 2 |])) with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      (match Wal.sync wal with Ok () -> () | Error e -> Alcotest.fail e);
      Wal.close wal;
      let eng2, wal2, report = ok (Recovery.recover ~dir ~directory ()) in
      Alcotest.(check bool) "frames dropped" true
        (report.Recovery.frames_dropped >= 1);
      Alcotest.(check int) "uncommitted insert rolled back" rows_before
        (Table.row_count (Database.get_table_exn (Engine.backend eng2) "t"));
      Alcotest.(check bool) "hash verified" true report.Recovery.hash_verified;
      Wal.close wal2;
      (* second recovery: the rolled-back frame must not resurface *)
      let eng3, wal3, report2 = ok (Recovery.recover ~dir ~directory ()) in
      Alcotest.(check int) "still rolled back" rows_before
        (Table.row_count (Database.get_table_exn (Engine.backend eng3) "t"));
      Alcotest.(check bool) "2nd recovery verified" true
        report2.Recovery.hash_verified;
      Wal.close wal3)

let () =
  Alcotest.run "crash"
    [
      ( "enumeration",
        [
          Alcotest.test_case "crash at every site" `Quick
            test_crash_every_site;
          Alcotest.test_case "torn writes" `Quick test_torn_writes;
          Alcotest.test_case "bit flips" `Quick test_bit_flips;
          Alcotest.test_case "transients absorbed" `Quick
            test_transients_absorbed;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "generation fallback" `Quick
            test_generation_fallback;
          Alcotest.test_case "uncommitted rollback" `Quick
            test_uncommitted_rollback;
        ] );
    ]
