(* Snapshots: roundtrip, integrity trailer, corruption detection. *)
open Tep_store

let build_db () =
  let db = Database.create ~name:"snapdb" in
  (match Database.create_table db ~name:"t1" (Schema.all_int [ "a"; "b" ]) with
  | Ok t ->
      for i = 1 to 30 do
        ignore (Table.insert t [| Value.Int i; Value.Int (i * i) |])
      done
  | Error e -> failwith e);
  (match
     Database.create_table db ~name:"t2"
       (Schema.make
          [
            { Schema.name = "k"; ty = Value.TText; nullable = false };
            { Schema.name = "v"; ty = Value.TFloat; nullable = true };
          ])
   with
  | Ok t ->
      ignore (Table.insert t [| Value.Text "pi"; Value.Float 3.14 |]);
      ignore (Table.insert t [| Value.Text "none"; Value.Null |])
  | Error e -> failwith e);
  db

let db_fingerprint db =
  Tep_tree.Streaming.hash_database Tep_crypto.Digest_algo.SHA256 db

let test_roundtrip () =
  let db = build_db () in
  match Snapshot.of_string (Snapshot.to_string db) with
  | Ok db' ->
      Alcotest.(check string) "identical content" (db_fingerprint db) (db_fingerprint db');
      Alcotest.(check (list string)) "tables" (Database.table_names db)
        (Database.table_names db');
      Alcotest.(check int) "node count" (Database.node_count db)
        (Database.node_count db')
  | Error e -> Alcotest.fail e

let test_corruption_detected () =
  let db = build_db () in
  let s = Snapshot.to_string db in
  (* flip one byte in the middle *)
  let bad = Bytes.of_string s in
  let mid = Bytes.length bad / 2 in
  Bytes.set bad mid (Char.chr (Char.code (Bytes.get bad mid) lxor 1));
  (match Snapshot.of_string (Bytes.to_string bad) with
  | Ok _ -> Alcotest.fail "corruption accepted"
  | Error e ->
      Alcotest.(check bool) "trailer mentioned" true
        (String.length e > 0));
  (* truncation *)
  match Snapshot.of_string (String.sub s 0 (String.length s - 1)) with
  | Ok _ -> Alcotest.fail "truncation accepted"
  | Error _ -> ()

let test_too_short () =
  match Snapshot.of_string "tiny" with
  | Ok _ -> Alcotest.fail "accepted"
  | Error e -> Alcotest.(check string) "msg" "snapshot: too short" e

let test_file_roundtrip () =
  let path = Filename.temp_file "tep_snap" ".db" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with _ -> ())
    (fun () ->
      let db = build_db () in
      (match Snapshot.save db path with Ok () -> () | Error e -> Alcotest.fail e);
      match Snapshot.load path with
      | Ok db' ->
          Alcotest.(check string) "file roundtrip" (db_fingerprint db)
            (db_fingerprint db')
      | Error e -> Alcotest.fail e)

let test_load_missing () =
  match Snapshot.load "/nonexistent/path/x.db" with
  | Ok _ -> Alcotest.fail "missing file loaded"
  | Error _ -> ()

(* --- failure paths, driven by fault injection ---------------------- *)

module Fault = Tep_fault.Fault

let with_faulty_save f =
  let path = Filename.temp_file "tep_snap" ".db" in
  Fun.protect
    ~finally:(fun () ->
      Fault.reset ();
      (try Sys.remove path with _ -> ());
      try Sys.remove (path ^ ".tmp") with _ -> ())
    (fun () -> f path)

let no_tmp_leak path =
  Alcotest.(check bool) "no .tmp leak" false (Sys.file_exists (path ^ ".tmp"))

(* A persistent transient error exhausts the retry budget: save
   reports Error, leaks no temp file, and leaves the old file alone. *)
let test_transient_exhausted () =
  with_faulty_save (fun path ->
      let db = build_db () in
      (match Snapshot.save db path with Ok () -> () | Error e -> failwith e);
      let before = db_fingerprint db in
      Fault.arm "snapshot.save.write" (Fault.Transient 99);
      (match Snapshot.save (Database.create ~name:"other") path with
      | Ok () -> Alcotest.fail "save succeeded through persistent fault"
      | Error _ -> ());
      Fault.reset ();
      no_tmp_leak path;
      match Snapshot.load path with
      | Ok db' ->
          Alcotest.(check string) "old file untouched" before
            (db_fingerprint db')
      | Error e -> Alcotest.fail e)

(* A transient error within the retry budget is invisible to callers. *)
let test_transient_retried () =
  with_faulty_save (fun path ->
      let db = build_db () in
      Fault.arm "snapshot.save.write" (Fault.Transient 2);
      (match Snapshot.save db path with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("retry should have absorbed: " ^ e));
      no_tmp_leak path;
      match Snapshot.load path with
      | Ok db' ->
          Alcotest.(check string) "saved" (db_fingerprint db)
            (db_fingerprint db')
      | Error e -> Alcotest.fail e)

(* Crashing at any save site leaks no temp file and never clobbers the
   previous snapshot; a subsequent save succeeds. *)
let test_crash_sites () =
  List.iter
    (fun site ->
      with_faulty_save (fun path ->
          let db = build_db () in
          (match Snapshot.save db path with
          | Ok () -> ()
          | Error e -> failwith e);
          let before = db_fingerprint db in
          Fault.arm site Fault.Crash_point;
          (match Snapshot.save (Database.create ~name:"other") path with
          | exception Fault.Crash _ -> ()
          | Ok () -> Alcotest.failf "%s: save survived crash" site
          | Error e -> Alcotest.failf "%s: crash became Error %s" site e);
          Fault.reset ();
          no_tmp_leak path;
          (match Snapshot.load path with
          | Ok db' ->
              Alcotest.(check string)
                (site ^ ": old file untouched")
                before (db_fingerprint db')
          | Error e -> Alcotest.fail e);
          (* recovery of the writer: the next save goes through *)
          let db2 = build_db () in
          (match Snapshot.save db2 path with
          | Ok () -> ()
          | Error e -> Alcotest.fail e);
          no_tmp_leak path))
    [
      "snapshot.save.open";
      "snapshot.save.write";
      "snapshot.save.sync";
      "snapshot.save.rename";
    ]

(* A torn write that crashes mid-rename-pipeline must not leave a
   half-written file where the snapshot should be. *)
let test_torn_write () =
  with_faulty_save (fun path ->
      let db = build_db () in
      (match Snapshot.save db path with Ok () -> () | Error e -> failwith e);
      Fault.arm "snapshot.save.write" (Fault.Torn_write 0.5);
      (match Snapshot.save (Database.create ~name:"other") path with
      | exception Fault.Crash _ -> ()
      | _ -> Alcotest.fail "torn write did not crash");
      Fault.reset ();
      no_tmp_leak path;
      match Snapshot.load path with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("old snapshot damaged: " ^ e))

(* Silent media corruption (bit flip) passes the write but is caught
   by the integrity trailer on load. *)
let test_bit_flip_detected () =
  with_faulty_save (fun path ->
      let db = build_db () in
      Fault.seed "snapshot-bit-flip";
      Fault.arm "snapshot.save.write" Fault.Bit_flip;
      (match Snapshot.save db path with Ok () -> () | Error e -> failwith e);
      Fault.reset ();
      match Snapshot.load path with
      | Ok _ -> Alcotest.fail "flipped snapshot accepted"
      | Error e ->
          Alcotest.(check bool) "trailer rejects" true
            (String.length e > 0))

let () =
  Alcotest.run "snapshot"
    [
      ( "unit",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "corruption detected" `Quick
            test_corruption_detected;
          Alcotest.test_case "too short" `Quick test_too_short;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "load missing" `Quick test_load_missing;
        ] );
      ( "faults",
        [
          Alcotest.test_case "transient exhausted" `Quick
            test_transient_exhausted;
          Alcotest.test_case "transient retried" `Quick test_transient_retried;
          Alcotest.test_case "crash at every site" `Quick test_crash_sites;
          Alcotest.test_case "torn write" `Quick test_torn_write;
          Alcotest.test_case "bit flip detected" `Quick test_bit_flip_detected;
        ] );
    ]
