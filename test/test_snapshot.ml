(* Snapshots: roundtrip, integrity trailer, corruption detection. *)
open Tep_store

let build_db () =
  let db = Database.create ~name:"snapdb" in
  (match Database.create_table db ~name:"t1" (Schema.all_int [ "a"; "b" ]) with
  | Ok t ->
      for i = 1 to 30 do
        ignore (Table.insert t [| Value.Int i; Value.Int (i * i) |])
      done
  | Error e -> failwith e);
  (match
     Database.create_table db ~name:"t2"
       (Schema.make
          [
            { Schema.name = "k"; ty = Value.TText; nullable = false };
            { Schema.name = "v"; ty = Value.TFloat; nullable = true };
          ])
   with
  | Ok t ->
      ignore (Table.insert t [| Value.Text "pi"; Value.Float 3.14 |]);
      ignore (Table.insert t [| Value.Text "none"; Value.Null |])
  | Error e -> failwith e);
  db

let db_fingerprint db =
  Tep_tree.Streaming.hash_database Tep_crypto.Digest_algo.SHA256 db

let test_roundtrip () =
  let db = build_db () in
  match Snapshot.of_string (Snapshot.to_string db) with
  | Ok db' ->
      Alcotest.(check string) "identical content" (db_fingerprint db) (db_fingerprint db');
      Alcotest.(check (list string)) "tables" (Database.table_names db)
        (Database.table_names db');
      Alcotest.(check int) "node count" (Database.node_count db)
        (Database.node_count db')
  | Error e -> Alcotest.fail e

let test_corruption_detected () =
  let db = build_db () in
  let s = Snapshot.to_string db in
  (* flip one byte in the middle *)
  let bad = Bytes.of_string s in
  let mid = Bytes.length bad / 2 in
  Bytes.set bad mid (Char.chr (Char.code (Bytes.get bad mid) lxor 1));
  (match Snapshot.of_string (Bytes.to_string bad) with
  | Ok _ -> Alcotest.fail "corruption accepted"
  | Error e ->
      Alcotest.(check bool) "trailer mentioned" true
        (String.length e > 0));
  (* truncation *)
  match Snapshot.of_string (String.sub s 0 (String.length s - 1)) with
  | Ok _ -> Alcotest.fail "truncation accepted"
  | Error _ -> ()

let test_too_short () =
  match Snapshot.of_string "tiny" with
  | Ok _ -> Alcotest.fail "accepted"
  | Error e -> Alcotest.(check string) "msg" "snapshot: too short" e

let test_file_roundtrip () =
  let path = Filename.temp_file "tep_snap" ".db" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with _ -> ())
    (fun () ->
      let db = build_db () in
      (match Snapshot.save db path with Ok () -> () | Error e -> Alcotest.fail e);
      match Snapshot.load path with
      | Ok db' ->
          Alcotest.(check string) "file roundtrip" (db_fingerprint db)
            (db_fingerprint db')
      | Error e -> Alcotest.fail e)

let test_load_missing () =
  match Snapshot.load "/nonexistent/path/x.db" with
  | Ok _ -> Alcotest.fail "missing file loaded"
  | Error _ -> ()

let () =
  Alcotest.run "snapshot"
    [
      ( "unit",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "corruption detected" `Quick
            test_corruption_detected;
          Alcotest.test_case "too short" `Quick test_too_short;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "load missing" `Quick test_load_missing;
        ] );
    ]
