(* Certificate authority and certificate validation. *)
open Tep_crypto

let drbg = Drbg.create ~seed:"test-pki"
let ca = Pki.create_ca ~name:"Root CA" drbg
let ca_key = Pki.ca_public_key ca
let alice = Rsa.generate ~bits:512 drbg
let bob = Rsa.generate ~bits:512 drbg

let test_issue_verify () =
  let cert = Pki.issue ca ~subject:"alice" alice.Rsa.public in
  Alcotest.(check string) "subject" "alice" cert.Pki.subject;
  Alcotest.(check string) "issuer" "Root CA" cert.Pki.issuer;
  Alcotest.(check bool) "verifies" true (Pki.verify_certificate ~ca_key cert)

let test_serials_increase () =
  let c1 = Pki.issue ca ~subject:"s1" alice.Rsa.public in
  let c2 = Pki.issue ca ~subject:"s2" bob.Rsa.public in
  Alcotest.(check bool) "monotone" true (c2.Pki.serial > c1.Pki.serial)

let test_tampered_subject () =
  let cert = Pki.issue ca ~subject:"alice" alice.Rsa.public in
  Alcotest.(check bool)
    "renamed subject fails" false
    (Pki.verify_certificate ~ca_key { cert with Pki.subject = "mallory" })

let test_swapped_key () =
  let cert = Pki.issue ca ~subject:"alice" alice.Rsa.public in
  Alcotest.(check bool)
    "swapped key fails" false
    (Pki.verify_certificate ~ca_key
       { cert with Pki.subject_key = bob.Rsa.public })

let test_wrong_ca () =
  let other_ca = Pki.create_ca ~name:"Root CA" drbg in
  let cert = Pki.issue ca ~subject:"alice" alice.Rsa.public in
  Alcotest.(check bool)
    "foreign CA key fails" false
    (Pki.verify_certificate ~ca_key:(Pki.ca_public_key other_ca) cert)

let test_tbs_binding () =
  (* the to-be-signed string must distinguish field boundaries *)
  let c1 = Pki.issue ca ~subject:"ab" alice.Rsa.public in
  let c2 = { c1 with Pki.subject = "a"; Pki.issuer = "bRoot CA" } in
  Alcotest.(check bool)
    "field-shift forgery fails" false
    (Pki.verify_certificate ~ca_key c2)

let test_serialisation () =
  let cert = Pki.issue ca ~subject:"weird|name:with delims" alice.Rsa.public in
  match Pki.certificate_of_string (Pki.certificate_to_string cert) with
  | Some c ->
      Alcotest.(check string) "subject" cert.Pki.subject c.Pki.subject;
      Alcotest.(check bool) "still verifies" true (Pki.verify_certificate ~ca_key c)
  | None -> Alcotest.fail "roundtrip failed"

let test_bad_serialisation () =
  Alcotest.(check bool) "garbage" true (Pki.certificate_of_string "garbage" = None);
  Alcotest.(check bool) "empty" true (Pki.certificate_of_string "" = None)

let () =
  Alcotest.run "pki"
    [
      ( "unit",
        [
          Alcotest.test_case "issue & verify" `Quick test_issue_verify;
          Alcotest.test_case "serials increase" `Quick test_serials_increase;
          Alcotest.test_case "tampered subject" `Quick test_tampered_subject;
          Alcotest.test_case "swapped key" `Quick test_swapped_key;
          Alcotest.test_case "wrong CA" `Quick test_wrong_ca;
          Alcotest.test_case "tbs field binding" `Quick test_tbs_binding;
          Alcotest.test_case "serialisation" `Quick test_serialisation;
          Alcotest.test_case "bad serialisation" `Quick test_bad_serialisation;
        ] );
    ]
