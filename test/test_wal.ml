(* Write-ahead log: entry codec, replay, file persistence, torn tails. *)
open Tep_store

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let sample_entries =
  [
    Wal.Create_table ("t", Schema.all_int [ "a"; "b" ]);
    Wal.Insert_row ("t", 0, [| Value.Int 1; Value.Int 2 |]);
    Wal.Insert_row ("t", 1, [| Value.Int 3; Value.Int 4 |]);
    Wal.Update_cell ("t", 0, 1, Value.Int 42);
    Wal.Update_row ("t", 1, [| Value.Int 5; Value.Int 6 |]);
    Wal.Delete_row ("t", 0);
    Wal.Drop_table "missing_is_error";
  ]

let test_entry_codec () =
  List.iter
    (fun e ->
      let buf = Buffer.create 64 in
      Wal.encode_entry buf e;
      let e', off = Wal.decode_entry (Buffer.contents buf) 0 in
      Alcotest.(check int) "consumed" (Buffer.length buf) off;
      let buf2 = Buffer.create 64 in
      Wal.encode_entry buf2 e';
      Alcotest.(check string) "stable" (Buffer.contents buf) (Buffer.contents buf2))
    sample_entries

let test_memory_log () =
  let w = Wal.in_memory () in
  List.iter (Wal.append w) sample_entries;
  Alcotest.(check int) "count" (List.length sample_entries) (Wal.entry_count w);
  Alcotest.(check int) "entries" (List.length sample_entries)
    (List.length (Wal.entries w))

let test_replay () =
  let w = Wal.in_memory () in
  List.iteri (fun i e -> if i < 6 then Wal.append w e) sample_entries;
  let db = Database.create ~name:"replayed" in
  ok (Wal.replay (Wal.entries w) db);
  let t = Database.get_table_exn db "t" in
  Alcotest.(check int) "one row left" 1 (Table.row_count t);
  match Table.get t 1 with
  | Some r -> Alcotest.(check bool) "updated row" true (Value.equal r.Table.cells.(0) (Value.Int 5))
  | None -> Alcotest.fail "row 1 missing"

let test_replay_error () =
  let db = Database.create ~name:"x" in
  match Wal.replay [ Wal.Insert_row ("ghost", 0, [||]) ] db with
  | Ok () -> Alcotest.fail "insert into missing table accepted"
  | Error _ -> ()

let with_temp_file f =
  let path = Filename.temp_file "tep_wal" ".log" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with _ -> ()) (fun () -> f path)

let test_file_log_roundtrip () =
  with_temp_file (fun path ->
      Sys.remove path;
      let w = Wal.open_file path in
      List.iteri (fun i e -> if i < 6 then Wal.append w e) sample_entries;
      Wal.close w;
      let db = Database.create ~name:"replayed" in
      let n = ok (Wal.load_and_replay path db) in
      Alcotest.(check int) "entries" 6 n;
      Alcotest.(check int) "rows" 1
        (Table.row_count (Database.get_table_exn db "t")))

let test_file_log_append_sessions () =
  with_temp_file (fun path ->
      Sys.remove path;
      let w1 = Wal.open_file path in
      Wal.append w1 (List.nth sample_entries 0);
      Wal.close w1;
      let w2 = Wal.open_file path in
      Wal.append w2 (List.nth sample_entries 1);
      Wal.close w2;
      let w3 = Wal.open_file path in
      Alcotest.(check int) "both sessions" 2 (List.length (Wal.entries w3));
      Wal.close w3)

let test_torn_tail () =
  with_temp_file (fun path ->
      Sys.remove path;
      let w = Wal.open_file path in
      Wal.append w (List.nth sample_entries 0);
      Wal.append w (List.nth sample_entries 1);
      Wal.close w;
      (* truncate mid-frame to simulate a crash *)
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let content = really_input_string ic len in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc (String.sub content 0 (len - 3));
      close_out oc;
      let w = Wal.open_file path in
      Alcotest.(check int) "only intact frames" 1 (List.length (Wal.entries w));
      Wal.close w)

let () =
  Alcotest.run "wal"
    [
      ( "unit",
        [
          Alcotest.test_case "entry codec" `Quick test_entry_codec;
          Alcotest.test_case "memory log" `Quick test_memory_log;
          Alcotest.test_case "replay" `Quick test_replay;
          Alcotest.test_case "replay error" `Quick test_replay_error;
          Alcotest.test_case "file roundtrip" `Quick test_file_log_roundtrip;
          Alcotest.test_case "append sessions" `Quick
            test_file_log_append_sessions;
          Alcotest.test_case "torn tail" `Quick test_torn_tail;
        ] );
    ]
