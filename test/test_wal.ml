(* Write-ahead log: entry codec, replay, v2 framing, salvage-mode
   reading (torn tails, mid-file corruption, resync), v1
   backward-compatibility, truncation, and exhaustive corruption
   property tests. *)
open Tep_store

let ok = function Ok v -> v | Error e -> Alcotest.fail e
let wok = function Ok () -> () | Error e -> Alcotest.fail ("wal: " ^ e)

let sample_entries =
  [
    Wal.Create_table ("t", Schema.all_int [ "a"; "b" ]);
    Wal.Insert_row ("t", 0, [| Value.Int 1; Value.Int 2 |]);
    Wal.Insert_row ("t", 1, [| Value.Int 3; Value.Int 4 |]);
    Wal.Update_cell ("t", 0, 1, Value.Int 42);
    Wal.Update_row ("t", 1, [| Value.Int 5; Value.Int 6 |]);
    Wal.Delete_row ("t", 0);
    Wal.Blob "opaque payload \x00\x01\x02";
    Wal.Commit (String.make 32 '\xab');
    Wal.Drop_table "missing_is_error";
  ]

let entry_bytes e =
  let buf = Buffer.create 64 in
  Wal.encode_entry buf e;
  Buffer.contents buf

let check_entry msg expected actual =
  Alcotest.(check string) msg (entry_bytes expected) (entry_bytes actual)

let test_entry_codec () =
  List.iter
    (fun e ->
      let buf = Buffer.create 64 in
      Wal.encode_entry buf e;
      let e', off = Wal.decode_entry (Buffer.contents buf) 0 in
      Alcotest.(check int) "consumed" (Buffer.length buf) off;
      check_entry "stable" e e')
    sample_entries

let test_is_relational () =
  Alcotest.(check int)
    "relational entries" 7
    (List.length (List.filter Wal.is_relational sample_entries))

let test_memory_log () =
  let w = Wal.in_memory () in
  List.iter (fun e -> wok (Wal.append w e)) sample_entries;
  Alcotest.(check int) "count" (List.length sample_entries) (Wal.entry_count w);
  Alcotest.(check int) "entries" (List.length sample_entries)
    (List.length (Wal.entries w));
  Alcotest.(check int) "last_seq" (List.length sample_entries - 1)
    (Wal.last_seq w)

let test_replay () =
  let w = Wal.in_memory () in
  List.iteri (fun i e -> if i < 8 then wok (Wal.append w e)) sample_entries;
  let db = Database.create ~name:"replayed" in
  ok (Wal.replay (Wal.entries w) db);
  let t = Database.get_table_exn db "t" in
  Alcotest.(check int) "one row left" 1 (Table.row_count t);
  match Table.get t 1 with
  | Some r ->
      Alcotest.(check bool)
        "updated row" true
        (Value.equal r.Table.cells.(0) (Value.Int 5))
  | None -> Alcotest.fail "row 1 missing"

let test_replay_error () =
  let db = Database.create ~name:"x" in
  match Wal.replay [ Wal.Insert_row ("ghost", 0, [||]) ] db with
  | Ok () -> Alcotest.fail "insert into missing table accepted"
  | Error _ -> ()

let with_temp_file f =
  let path = Filename.temp_file "tep_wal" ".log" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with _ -> ())
    (fun () -> f path)

let write_log path entries =
  Sys.remove path;
  let w = Wal.open_file path in
  List.iter (fun e -> wok (Wal.append w e)) entries;
  Wal.close w

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_file_log_roundtrip () =
  with_temp_file (fun path ->
      write_log path (List.filteri (fun i _ -> i < 8) sample_entries);
      let db = Database.create ~name:"replayed" in
      let n = ok (Wal.load_and_replay path db) in
      Alcotest.(check int) "entries" 8 n;
      Alcotest.(check int) "rows" 1
        (Table.row_count (Database.get_table_exn db "t")))

let test_file_magic () =
  with_temp_file (fun path ->
      write_log path [ List.hd sample_entries ];
      let s = read_bytes path in
      Alcotest.(check string) "v2 magic" "TEPWAL2\n" (String.sub s 0 8))

let test_file_log_append_sessions () =
  with_temp_file (fun path ->
      write_log path [ List.nth sample_entries 0 ];
      let w2 = Wal.open_file path in
      Alcotest.(check int) "resumed seq" 0 (Wal.last_seq w2);
      wok (Wal.append w2 (List.nth sample_entries 1));
      Alcotest.(check int) "advanced seq" 1 (Wal.last_seq w2);
      Wal.close w2;
      let w3 = Wal.open_file path in
      Alcotest.(check int) "both sessions" 2 (List.length (Wal.entries w3));
      Wal.close w3)

let test_torn_tail () =
  with_temp_file (fun path ->
      write_log path
        [ List.nth sample_entries 0; List.nth sample_entries 1 ];
      let content = read_bytes path in
      write_bytes path (String.sub content 0 (String.length content - 3));
      let sv = ok (Wal.salvage_file path) in
      Alcotest.(check int) "only intact frames" 1
        (List.length sv.Wal.entries);
      Alcotest.(check bool) "torn tail" true sv.Wal.torn_tail;
      Alcotest.(check int) "no mid-file skip" 0 sv.Wal.skipped_frames;
      (* re-opening a torn log resumes after the last intact frame *)
      let w = Wal.open_file path in
      Alcotest.(check int) "resumes at seq 1" 0 (Wal.last_seq w);
      Wal.close w)

(* Corrupt one byte in the middle of the log: every frame before the
   damage and every intact frame after it must be recovered; exactly
   one damaged region is reported and nothing raises. *)
let test_midfile_corruption_resync () =
  with_temp_file (fun path ->
      let entries = List.filteri (fun i _ -> i < 8) sample_entries in
      write_log path entries;
      let content = read_bytes path in
      (* find the byte span of frame 3 (0-based) to smash it *)
      let b = Bytes.of_string content in
      let mid = String.length content / 2 in
      Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0xFF));
      write_bytes path (Bytes.to_string b);
      let sv = ok (Wal.salvage_file path) in
      Alcotest.(check bool) "no torn tail" false sv.Wal.torn_tail;
      Alcotest.(check int) "one damaged region" 1 sv.Wal.skipped_frames;
      (* all surviving frames carry their original seq and payload *)
      List.iter
        (fun (seq, e) ->
          check_entry
            (Printf.sprintf "frame %d intact" seq)
            (List.nth entries seq) e)
        sv.Wal.entries;
      (* at least one frame after the damage was resynchronised *)
      let max_seq =
        List.fold_left (fun m (s, _) -> max m s) (-1) sv.Wal.entries
      in
      Alcotest.(check int) "resynced to the tail" 7 max_seq)

(* ------------------------------------------------------------------ *)
(* v1 backward compatibility                                           *)
(* ------------------------------------------------------------------ *)

(* A v1 log as the seed code wrote it: varint(entry_len) · entry,
   no magic, no CRC, no seq. *)
let v1_bytes entries =
  let buf = Buffer.create 256 in
  List.iter
    (fun e ->
      let body = Buffer.create 64 in
      Wal.encode_entry body e;
      Value.add_varint buf (Buffer.length body);
      Buffer.add_buffer buf body)
    entries;
  Buffer.contents buf

let test_v1_read_compat () =
  with_temp_file (fun path ->
      let entries = List.filteri (fun i _ -> i < 6) sample_entries in
      write_bytes path (v1_bytes entries);
      let got = Wal.read_file path in
      Alcotest.(check int) "all v1 entries" 6 (List.length got);
      List.iter2 (fun e g -> check_entry "v1 entry" e g) entries got;
      let sv = ok (Wal.salvage_file path) in
      List.iteri
        (fun i (seq, _) ->
          Alcotest.(check int) "synthesised seq" i seq)
        sv.Wal.entries)

let test_v1_append_compat () =
  with_temp_file (fun path ->
      write_bytes path (v1_bytes [ List.nth sample_entries 0 ]);
      (* appending to a v1 log must keep it readable as v1 *)
      let w = Wal.open_file path in
      wok (Wal.append w (List.nth sample_entries 1));
      Wal.close w;
      let got = Wal.read_file path in
      Alcotest.(check int) "both entries" 2 (List.length got);
      check_entry "old frame" (List.nth sample_entries 0) (List.nth got 0);
      check_entry "new frame" (List.nth sample_entries 1) (List.nth got 1))

let test_v1_torn_tail () =
  with_temp_file (fun path ->
      let s = v1_bytes [ List.nth sample_entries 0; List.nth sample_entries 1 ] in
      write_bytes path (String.sub s 0 (String.length s - 2));
      let sv = ok (Wal.salvage_file path) in
      Alcotest.(check int) "intact prefix" 1 (List.length sv.Wal.entries);
      Alcotest.(check bool) "torn" true sv.Wal.torn_tail)

(* ------------------------------------------------------------------ *)
(* Truncation                                                          *)
(* ------------------------------------------------------------------ *)

let test_truncate () =
  with_temp_file (fun path ->
      Sys.remove path;
      let w = Wal.open_file path in
      List.iter
        (fun e -> wok (Wal.append w e))
        (List.filteri (fun i _ -> i < 6) sample_entries);
      let lsn = ok (Wal.checkpoint w) in
      Alcotest.(check int) "checkpoint lsn" 5 lsn;
      wok (Wal.append w (List.nth sample_entries 6));
      wok (Wal.append w (List.nth sample_entries 7));
      wok (Wal.truncate w ~upto:lsn);
      (* frames after the LSN survive with their original seqs *)
      let sv = ok (Wal.salvage_file path) in
      Alcotest.(check (list int)) "surviving seqs" [ 6; 7 ]
        (List.map fst sv.Wal.entries);
      (* the handle keeps appending with continuous seqs *)
      wok (Wal.append w (List.nth sample_entries 8));
      Alcotest.(check int) "seq continues" 8 (Wal.last_seq w);
      Wal.close w;
      let sv = ok (Wal.salvage_file path) in
      Alcotest.(check (list int)) "final seqs" [ 6; 7; 8 ]
        (List.map fst sv.Wal.entries))

(* Truncating away EVERY frame must not reset sequence numbering on
   reopen — otherwise frames written after the truncation would carry
   seqs at or below the checkpoint LSN and be discarded by recovery. *)
let test_truncate_to_empty_preserves_seq () =
  with_temp_file (fun path ->
      Sys.remove path;
      let w = Wal.open_file path in
      List.iter
        (fun e -> wok (Wal.append w e))
        (List.filteri (fun i _ -> i < 3) sample_entries);
      wok (Wal.truncate w ~upto:2);
      Wal.close w;
      let w2 = Wal.open_file path in
      Alcotest.(check int) "numbering resumes past LSN" 2 (Wal.last_seq w2);
      wok (Wal.append w2 (List.nth sample_entries 3));
      Wal.close w2;
      let sv = ok (Wal.salvage_file path) in
      Alcotest.(check (list int)) "new frame above LSN" [ 3 ]
        (List.map fst sv.Wal.entries))

let test_truncate_upgrades_v1 () =
  with_temp_file (fun path ->
      let entries = List.filteri (fun i _ -> i < 4) sample_entries in
      write_bytes path (v1_bytes entries);
      let w = Wal.open_file path in
      wok (Wal.truncate w ~upto:1);
      Wal.close w;
      let s = read_bytes path in
      Alcotest.(check string) "upgraded to v2" "TEPWAL2\n" (String.sub s 0 8);
      let sv = ok (Wal.salvage_file path) in
      Alcotest.(check (list int)) "kept seqs" [ 2; 3 ]
        (List.map fst sv.Wal.entries))

(* ------------------------------------------------------------------ *)
(* Exhaustive corruption properties                                    *)
(* ------------------------------------------------------------------ *)

(* For EVERY byte offset: flipping that byte must never make salvage
   raise, and (past the magic) never yield an entry that differs from
   what was written at that sequence number. *)
let test_flip_every_byte () =
  with_temp_file (fun path ->
      let entries = List.filteri (fun i _ -> i < 8) sample_entries in
      write_log path entries;
      let pristine = read_bytes path in
      let expected = Array.of_list (List.map entry_bytes entries) in
      for off = 0 to String.length pristine - 1 do
        for bit = 0 to 2 do
          let b = Bytes.of_string pristine in
          Bytes.set b off
            (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl (bit * 3))));
          write_bytes path (Bytes.to_string b);
          let sv =
            try ok (Wal.salvage_file path)
            with e ->
              Alcotest.failf "salvage raised at offset %d: %s" off
                (Printexc.to_string e)
          in
          if off >= 8 then
            (* with the magic intact, CRC framing guarantees every
               salvaged (seq, entry) is exactly what was written *)
            List.iter
              (fun (seq, e) ->
                if seq < 0 || seq >= Array.length expected then
                  Alcotest.failf "offset %d: invented seq %d" off seq;
                Alcotest.(check string)
                  (Printf.sprintf "offset %d seq %d" off seq)
                  expected.(seq) (entry_bytes e))
              sv.Wal.entries
        done
      done)

(* For EVERY truncation point: salvage must never raise and must
   return exactly a prefix of the written entries. *)
let test_truncate_every_byte () =
  with_temp_file (fun path ->
      let entries = List.filteri (fun i _ -> i < 8) sample_entries in
      write_log path entries;
      let pristine = read_bytes path in
      let expected = Array.of_list (List.map entry_bytes entries) in
      for cut = 0 to String.length pristine - 1 do
        write_bytes path (String.sub pristine 0 cut);
        let sv =
          try ok (Wal.salvage_file path)
          with e ->
            Alcotest.failf "salvage raised at cut %d: %s" cut
              (Printexc.to_string e)
        in
        Alcotest.(check int)
          (Printf.sprintf "cut %d: no mid-file skip" cut)
          0 sv.Wal.skipped_frames;
        List.iteri
          (fun i (seq, e) ->
            Alcotest.(check int) (Printf.sprintf "cut %d: dense seqs" cut) i seq;
            Alcotest.(check string)
              (Printf.sprintf "cut %d seq %d: prefix" cut seq)
              expected.(seq) (entry_bytes e))
          sv.Wal.entries
      done)

let () =
  Alcotest.run "wal"
    [
      ( "unit",
        [
          Alcotest.test_case "entry codec" `Quick test_entry_codec;
          Alcotest.test_case "is_relational" `Quick test_is_relational;
          Alcotest.test_case "memory log" `Quick test_memory_log;
          Alcotest.test_case "replay" `Quick test_replay;
          Alcotest.test_case "replay error" `Quick test_replay_error;
          Alcotest.test_case "file roundtrip" `Quick test_file_log_roundtrip;
          Alcotest.test_case "v2 magic" `Quick test_file_magic;
          Alcotest.test_case "append sessions" `Quick
            test_file_log_append_sessions;
          Alcotest.test_case "torn tail" `Quick test_torn_tail;
          Alcotest.test_case "mid-file corruption resync" `Quick
            test_midfile_corruption_resync;
        ] );
      ( "v1-compat",
        [
          Alcotest.test_case "read" `Quick test_v1_read_compat;
          Alcotest.test_case "append" `Quick test_v1_append_compat;
          Alcotest.test_case "torn tail" `Quick test_v1_torn_tail;
        ] );
      ( "truncate",
        [
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "truncate to empty keeps seq" `Quick
            test_truncate_to_empty_preserves_seq;
          Alcotest.test_case "upgrades v1" `Quick test_truncate_upgrades_v1;
        ] );
      ( "properties",
        [
          Alcotest.test_case "flip every byte" `Quick test_flip_every_byte;
          Alcotest.test_case "cut every byte" `Quick test_truncate_every_byte;
        ] );
    ]
