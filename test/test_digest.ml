(* Hash functions against published test vectors, plus incremental /
   one-shot agreement properties. *)
open Tep_crypto

let check = Alcotest.(check string)

(* FIPS 180 / RFC 1321 vectors. *)
let sha1_vectors =
  [
    ("", "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    ("abc", "a9993e364706816aba3e25717850c26c9cd0d89d");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
       ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "a49b2446a02c645bf419f995b67091253a04a259" );
    ("The quick brown fox jumps over the lazy dog", "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
  ]

let sha256_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
       ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
  ]

let md5_vectors =
  [
    ("", "d41d8cd98f00b204e9800998ecf8427e");
    ("a", "0cc175b9c0f1b6a831c399e269772661");
    ("abc", "900150983cd24fb0d6963f7d28e17f72");
    ("message digest", "f96b697d7cb7938d525a2f31aaf161d0");
    ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b");
    ( "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
      "d174ab98d277d9f5a5611c2c9f419d9f" );
    ( "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
      "57edf4a22be3c955ac49da2e2107b67a" );
  ]

let vec_tests name hex vectors =
  List.mapi
    (fun i (input, expected) ->
      Alcotest.test_case (Printf.sprintf "%s vector %d" name i) `Quick
        (fun () -> check input expected (hex input)))
    vectors

let test_million_a () =
  check "sha1 10^6 x a" "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (Sha1.hex (String.make 1_000_000 'a'));
  check "sha256 10^6 x a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex (String.make 1_000_000 'a'))

let test_digest_sizes () =
  Alcotest.(check int) "md5" 16 Md5.digest_size;
  Alcotest.(check int) "sha1" 20 Sha1.digest_size;
  Alcotest.(check int) "sha256" 32 Sha256.digest_size;
  List.iter
    (fun a ->
      Alcotest.(check int)
        (Digest_algo.name a)
        (Digest_algo.size a)
        (String.length (Digest_algo.digest a "x")))
    Digest_algo.all

let test_algo_names () =
  Alcotest.(check (option string))
    "sha is sha1" (Some "sha1")
    (Option.map Digest_algo.name (Digest_algo.of_name "SHA"));
  Alcotest.(check (option string))
    "sha-256" (Some "sha256")
    (Option.map Digest_algo.name (Digest_algo.of_name "sha-256"));
  Alcotest.(check bool) "unknown" true (Digest_algo.of_name "blake2" = None)

(* A reset context must behave exactly like a fresh one, including
   after a digest that left buffered partial-block state behind. *)
let test_reset_reuse () =
  let inputs = [ ""; "abc"; String.make 200 'z'; "tail" ] in
  let sha1 = Sha1.init () and sha256 = Sha256.init () and md5 = Md5.init () in
  List.iter
    (fun s ->
      Sha1.reset sha1;
      Sha1.update sha1 s;
      check "sha1 reset" (Sha1.digest s) (Sha1.final sha1);
      Sha256.reset sha256;
      Sha256.update sha256 s;
      check "sha256 reset" (Sha256.digest s) (Sha256.final sha256);
      Md5.reset md5;
      Md5.update md5 s;
      check "md5 reset" (Md5.digest s) (Md5.final md5))
    inputs

let test_hex_roundtrip () =
  let s = "\x00\x01\xfe\xff\x80 abc" in
  check "roundtrip" s (Digest_algo.of_hex (Digest_algo.to_hex s));
  Alcotest.check_raises "odd" (Invalid_argument "Digest_algo.of_hex: odd length")
    (fun () -> ignore (Digest_algo.of_hex "abc"))

(* Property: any split of the input through the incremental API gives
   the one-shot digest. *)
let prop_incremental algo =
  QCheck2.Test.make
    ~name:(Printf.sprintf "%s incremental = one-shot" (Digest_algo.name algo))
    ~count:200
    QCheck2.Gen.(
      pair (string_size ~gen:char (int_range 0 300)) (int_range 0 300))
    (fun (s, cut) ->
      let cut = if String.length s = 0 then 0 else cut mod (String.length s + 1) in
      let ctx = Digest_algo.init algo in
      Digest_algo.update ctx (String.sub s 0 cut);
      Digest_algo.update ctx (String.sub s cut (String.length s - cut));
      String.equal (Digest_algo.final ctx) (Digest_algo.digest algo s))

let prop_update_sub algo =
  QCheck2.Test.make
    ~name:(Printf.sprintf "%s update_sub window" (Digest_algo.name algo))
    ~count:200
    QCheck2.Gen.(string_size ~gen:char (int_range 0 400))
    (fun s ->
      let padded = "xx" ^ s ^ "yy" in
      let ctx = Digest_algo.init algo in
      Digest_algo.update_sub ctx padded 2 (String.length s);
      String.equal (Digest_algo.final ctx) (Digest_algo.digest algo s))

let prop_distinct =
  QCheck2.Test.make ~name:"distinct inputs hash apart (sha256)" ~count:300
    QCheck2.Gen.(pair (string_size ~gen:char (int_range 0 40)) (string_size ~gen:char (int_range 0 40)))
    (fun (a, b) ->
      QCheck2.assume (not (String.equal a b));
      not (String.equal (Sha256.digest a) (Sha256.digest b)))

let () =
  Alcotest.run "digest"
    [
      ("sha1-vectors", vec_tests "sha1" Sha1.hex sha1_vectors);
      ("sha256-vectors", vec_tests "sha256" Sha256.hex sha256_vectors);
      ("md5-vectors", vec_tests "md5" Md5.hex md5_vectors);
      ( "unit",
        [
          Alcotest.test_case "million a" `Slow test_million_a;
          Alcotest.test_case "digest sizes" `Quick test_digest_sizes;
          Alcotest.test_case "algo names" `Quick test_algo_names;
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "reset reuse" `Quick test_reset_reuse;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          ([ prop_distinct ]
          @ List.map prop_incremental Digest_algo.all
          @ List.map prop_update_sub Digest_algo.all) );
    ]
