(* Checksum payloads and signature verification. *)
open Tep_tree
open Tep_core

let drbg = Tep_crypto.Drbg.create ~seed:"test-checksum"
let ca = Tep_crypto.Pki.create_ca ~name:"CA" drbg
let dir = Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
let alice = Participant.create ~ca ~name:"alice" drbg
let bob = Participant.create ~ca ~name:"bob" drbg
let () = Participant.Directory.register dir alice
let () = Participant.Directory.register dir bob

let oid = Oid.of_int 7

let test_payload_arities () =
  let p =
    Checksum.payload ~kind:Record.Insert ~seq_id:0 ~output_oid:oid
      ~input_hashes:[] ~output_hash:"h" ~prev_checksums:[]
  in
  Alcotest.(check bool) "insert ok" true (String.length p > 0);
  Alcotest.check_raises "insert with input"
    (Invalid_argument "Checksum.payload: insert takes no inputs") (fun () ->
      ignore
        (Checksum.payload ~kind:Record.Insert ~seq_id:0 ~output_oid:oid
           ~input_hashes:[ "x" ] ~output_hash:"h" ~prev_checksums:[]));
  Alcotest.check_raises "aggregate arity"
    (Invalid_argument "Checksum.payload: aggregate needs one prev per input")
    (fun () ->
      ignore
        (Checksum.payload ~kind:Record.Aggregate ~seq_id:1 ~output_oid:oid
           ~input_hashes:[ "a"; "b" ] ~output_hash:"h" ~prev_checksums:[ "c" ]))

let test_payload_distinct () =
  (* payloads differ whenever any component differs *)
  let base ~seq ~oid ~ih ~oh ~prev =
    Checksum.payload ~kind:Record.Update ~seq_id:seq ~output_oid:oid
      ~input_hashes:[ ih ] ~output_hash:oh ~prev_checksums:[ prev ]
  in
  let p0 = base ~seq:1 ~oid ~ih:"i" ~oh:"o" ~prev:"c" in
  Alcotest.(check bool) "seq" false (String.equal p0 (base ~seq:2 ~oid ~ih:"i" ~oh:"o" ~prev:"c"));
  Alcotest.(check bool) "oid" false
    (String.equal p0 (base ~seq:1 ~oid:(Oid.of_int 8) ~ih:"i" ~oh:"o" ~prev:"c"));
  Alcotest.(check bool) "input" false (String.equal p0 (base ~seq:1 ~oid ~ih:"j" ~oh:"o" ~prev:"c"));
  Alcotest.(check bool) "output" false (String.equal p0 (base ~seq:1 ~oid ~ih:"i" ~oh:"p" ~prev:"c"));
  Alcotest.(check bool) "prev" false (String.equal p0 (base ~seq:1 ~oid ~ih:"i" ~oh:"o" ~prev:"d"))

let test_payload_framing () =
  (* field-boundary shifts must not collide *)
  let p1 =
    Checksum.payload ~kind:Record.Update ~seq_id:1 ~output_oid:oid
      ~input_hashes:[ "ab" ] ~output_hash:"c" ~prev_checksums:[ "d" ]
  in
  let p2 =
    Checksum.payload ~kind:Record.Update ~seq_id:1 ~output_oid:oid
      ~input_hashes:[ "a" ] ~output_hash:"bc" ~prev_checksums:[ "d" ]
  in
  Alcotest.(check bool) "no collision" false (String.equal p1 p2)

let test_kinds_distinct () =
  let upd =
    Checksum.payload ~kind:Record.Update ~seq_id:0 ~output_oid:oid
      ~input_hashes:[ "h" ] ~output_hash:"o" ~prev_checksums:[]
  in
  let imp =
    Checksum.payload ~kind:Record.Import ~seq_id:0 ~output_oid:oid
      ~input_hashes:[ "h" ] ~output_hash:"o" ~prev_checksums:[]
  in
  Alcotest.(check bool) "update <> import" false (String.equal upd imp)

let mk_record participant ~tamper =
  let input_hashes = [ "input-hash" ] in
  let output_hash = "output-hash" in
  let payload =
    Checksum.payload ~kind:Record.Update ~seq_id:1 ~output_oid:oid
      ~input_hashes ~output_hash ~prev_checksums:[ "prev" ]
  in
  let checksum = Checksum.sign participant payload in
  {
    Record.seq_id = 1;
    participant = (if tamper then "bob" else Participant.name participant);
    kind = Record.Update;
    inherited = false;
    input_oids = [ oid ];
    input_hashes;
    output_oid = oid;
    output_hash;
    output_value = None;
    prev_checksums = [ "prev" ];
    checksum;
  }

let test_verify_record_ok () =
  match Checksum.verify_record dir (mk_record alice ~tamper:false) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_verify_record_wrong_signer () =
  (* alice signed but record claims bob: R8/R1 *)
  match Checksum.verify_record dir (mk_record alice ~tamper:true) with
  | Ok () -> Alcotest.fail "forged attribution accepted"
  | Error _ -> ()

let test_verify_record_unknown_participant () =
  let r = { (mk_record alice ~tamper:false) with Record.participant = "eve" } in
  match Checksum.verify_record dir r with
  | Ok () -> Alcotest.fail "unknown participant accepted"
  | Error e ->
      Alcotest.(check string) "msg" "unknown participant eve" e

let test_verify_record_tampered_field () =
  let r = { (mk_record alice ~tamper:false) with Record.output_hash = "evil" } in
  match Checksum.verify_record dir r with
  | Ok () -> Alcotest.fail "tampered record accepted"
  | Error _ -> ()

(* The verified-certificate cache: repeated verifications pay one CA
   check per subject, re-registration invalidates the entry, and the
   cache never changes verification outcomes. *)
let test_cert_cache () =
  let drbg = Tep_crypto.Drbg.create ~seed:"test-checksum-cache" in
  let ca = Tep_crypto.Pki.create_ca ~name:"CA2" drbg in
  let d = Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca) in
  let carol = Participant.create ~ca ~name:"carol" drbg in
  Participant.Directory.register d carol;
  Alcotest.(check int) "cache empty at start" 0
    (Participant.Directory.verified_count d);
  let r = mk_record carol ~tamper:false in
  for _ = 1 to 10 do
    match Checksum.verify_record d r with
    | Ok () -> ()
    | Error e -> Alcotest.fail e
  done;
  Alcotest.(check int) "one cached subject after many verifies" 1
    (Participant.Directory.verified_count d);
  (match Participant.Directory.lookup_verified d "carol" with
  | `Verified _ -> ()
  | _ -> Alcotest.fail "carol should verify");
  (match Participant.Directory.lookup_verified d "nobody" with
  | `Unknown -> ()
  | _ -> Alcotest.fail "unknown subject should be `Unknown");
  (* re-registration (same key) drops the cached entry *)
  (match
     Participant.Directory.register_certificate d (Participant.certificate carol)
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "invalidated on re-registration" 0
    (Participant.Directory.verified_count d);
  (* and verification still works, re-filling the cache *)
  (match Checksum.verify_record d r with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "re-cached" 1 (Participant.Directory.verified_count d)

let test_verify_wrong_key () =
  let payload = "data" in
  let c = Checksum.sign alice payload in
  Alcotest.(check bool) "right key" true
    (Checksum.verify (Participant.public_key alice) ~payload ~checksum:c);
  Alcotest.(check bool) "wrong key" false
    (Checksum.verify (Participant.public_key bob) ~payload ~checksum:c)

let () =
  Alcotest.run "checksum"
    [
      ( "unit",
        [
          Alcotest.test_case "payload arities" `Quick test_payload_arities;
          Alcotest.test_case "payload distinct" `Quick test_payload_distinct;
          Alcotest.test_case "payload framing" `Quick test_payload_framing;
          Alcotest.test_case "kinds distinct" `Quick test_kinds_distinct;
          Alcotest.test_case "verify ok" `Quick test_verify_record_ok;
          Alcotest.test_case "wrong signer" `Quick
            test_verify_record_wrong_signer;
          Alcotest.test_case "unknown participant" `Quick
            test_verify_record_unknown_participant;
          Alcotest.test_case "tampered field" `Quick
            test_verify_record_tampered_field;
          Alcotest.test_case "wrong key" `Quick test_verify_wrong_key;
          Alcotest.test_case "verified-cert cache" `Quick test_cert_cache;
        ] );
    ]
