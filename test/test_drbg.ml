(* HMAC-DRBG behaviour: determinism, seed separation, uniformity. *)
open Tep_crypto

let test_determinism () =
  let a = Drbg.create ~seed:"seed" and b = Drbg.create ~seed:"seed" in
  Alcotest.(check string) "same stream" (Drbg.generate a 256) (Drbg.generate b 256);
  Alcotest.(check string) "continues equal" (Drbg.generate a 64) (Drbg.generate b 64)

let test_seed_separation () =
  let a = Drbg.create ~seed:"seed-1" and b = Drbg.create ~seed:"seed-2" in
  Alcotest.(check bool)
    "different" false
    (String.equal (Drbg.generate a 64) (Drbg.generate b 64))

let test_reseed_diverges () =
  let a = Drbg.create ~seed:"s" and b = Drbg.create ~seed:"s" in
  Drbg.reseed a "extra entropy";
  Alcotest.(check bool)
    "diverged" false
    (String.equal (Drbg.generate a 32) (Drbg.generate b 32))

let test_lengths () =
  let d = Drbg.create ~seed:"len" in
  List.iter
    (fun n -> Alcotest.(check int) (string_of_int n) n (String.length (Drbg.generate d n)))
    [ 0; 1; 31; 32; 33; 100; 1000 ];
  Alcotest.check_raises "negative" (Invalid_argument "Drbg.generate: negative length")
    (fun () -> ignore (Drbg.generate d (-1)))

let test_uniform_int_range () =
  let d = Drbg.create ~seed:"uniform" in
  for _ = 1 to 2000 do
    let x = Drbg.uniform_int d 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done;
  Alcotest.(check int) "bound 1" 0 (Drbg.uniform_int d 1);
  Alcotest.check_raises "bound 0" (Invalid_argument "Drbg.uniform_int: bound <= 0")
    (fun () -> ignore (Drbg.uniform_int d 0))

let test_uniform_int_coverage () =
  (* Every residue of a small bound should appear in a long run. *)
  let d = Drbg.create ~seed:"coverage" in
  let seen = Array.make 10 false in
  for _ = 1 to 1000 do
    seen.(Drbg.uniform_int d 10) <- true
  done;
  Alcotest.(check bool) "all residues seen" true (Array.for_all Fun.id seen)

let test_byte_distribution () =
  (* Chi-squared-ish sanity: no byte value wildly over-represented. *)
  let d = Drbg.create ~seed:"dist" in
  let counts = Array.make 256 0 in
  let n = 65536 in
  String.iter (fun c -> counts.(Char.code c) <- counts.(Char.code c) + 1)
    (Drbg.generate d n);
  let expected = n / 256 in
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "byte %d balanced" i)
        true
        (c > expected / 3 && c < expected * 3))
    counts

let test_system_seeding () =
  let a = Drbg.create_system () and b = Drbg.create_system () in
  Alcotest.(check bool)
    "system streams differ" false
    (String.equal (Drbg.generate a 32) (Drbg.generate b 32))

let () =
  Alcotest.run "drbg"
    [
      ( "unit",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed separation" `Quick test_seed_separation;
          Alcotest.test_case "reseed diverges" `Quick test_reseed_diverges;
          Alcotest.test_case "lengths" `Quick test_lengths;
          Alcotest.test_case "uniform_int range" `Quick test_uniform_int_range;
          Alcotest.test_case "uniform_int coverage" `Quick
            test_uniform_int_coverage;
          Alcotest.test_case "byte distribution" `Quick test_byte_distribution;
          Alcotest.test_case "system seeding" `Quick test_system_seeding;
        ] );
    ]
