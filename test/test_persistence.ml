(* Cross-session persistence: forest / tree-view codecs, participant
   and CA serialisation, and full engine resume via Engine.of_parts. *)
open Tep_store
open Tep_tree
open Tep_core

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let iv i = Value.Int i

(* ---- forest codec ---- *)

let test_forest_roundtrip () =
  let f = Forest.create () in
  let a = ok (Forest.insert f (Value.Text "root")) in
  let b = ok (Forest.insert ~parent:a f (iv 1)) in
  let _c = ok (Forest.insert ~parent:b f (iv 2)) in
  let d = ok (Forest.insert f (iv 3)) in
  ignore (ok (Forest.delete f d));
  (* d's oid must NOT be reused after reload *)
  let buf = Buffer.create 256 in
  Forest.encode buf f;
  let f', off = Forest.decode (Buffer.contents buf) 0 in
  Alcotest.(check int) "consumed" (Buffer.length buf) off;
  Alcotest.(check int) "node count" (Forest.node_count f) (Forest.node_count f');
  Alcotest.(check bool) "same subtree" true
    (Subtree.equal (ok (Forest.subtree f a)) (ok (Forest.subtree f' a)));
  let fresh = ok (Forest.insert f' (iv 9)) in
  Alcotest.(check bool) "watermark: deleted oid not reused" true
    (Oid.compare fresh d > 0)

let test_forest_roundtrip_hash_stable () =
  let algo = Tep_crypto.Digest_algo.SHA1 in
  let f = Forest.create () in
  let root = ok (Forest.insert f (Value.Text "r")) in
  for i = 1 to 30 do
    ignore (ok (Forest.insert ~parent:root f (iv i)))
  done;
  let h = Merkle.hash_subtree algo (ok (Forest.subtree f root)) in
  let buf = Buffer.create 256 in
  Forest.encode buf f;
  let f', _ = Forest.decode (Buffer.contents buf) 0 in
  let h' = Merkle.hash_subtree algo (ok (Forest.subtree f' root)) in
  Alcotest.(check string) "hash stable" (Tep_crypto.Digest_algo.to_hex h)
    (Tep_crypto.Digest_algo.to_hex h')

let prop_forest_roundtrip =
  QCheck2.Test.make ~name:"random forest codec roundtrip" ~count:100
    QCheck2.Gen.(list_size (int_range 1 30) (int_range 0 100))
    (fun values ->
      let f = Forest.create () in
      let nodes = ref [] in
      List.iteri
        (fun i v ->
          let parent =
            match !nodes with
            | [] -> None
            | l -> Some (List.nth l (i * 7 mod List.length l))
          in
          match Forest.insert ?parent f (iv v) with
          | Ok o -> nodes := o :: !nodes
          | Error _ -> ())
        values;
      let buf = Buffer.create 256 in
      Forest.encode buf f;
      let f', _ = Forest.decode (Buffer.contents buf) 0 in
      Forest.node_count f = Forest.node_count f'
      && List.for_all
           (fun o ->
             match (Forest.subtree f o, Forest.subtree f' o) with
             | Ok a, Ok b -> Subtree.equal a b
             | _ -> false)
           (Forest.roots f))

(* ---- tree view codec ---- *)

let test_view_roundtrip () =
  let db = Database.create ~name:"p" in
  let t = ok (Database.create_table db ~name:"t" (Schema.all_int [ "a"; "b" ])) in
  for i = 0 to 4 do
    ignore (Table.insert t [| iv i; iv i |])
  done;
  let f = Forest.create () in
  let m = Tree_view.build f db in
  let buf = Buffer.create 256 in
  Tree_view.encode buf m;
  let m', off = Tree_view.decode (Buffer.contents buf) 0 in
  Alcotest.(check int) "consumed" (Buffer.length buf) off;
  Alcotest.(check bool) "root" true (Oid.equal (Tree_view.root m) (Tree_view.root m'));
  for i = 0 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "row %d" i)
      true
      (Tree_view.row_oid m "t" i = Tree_view.row_oid m' "t" i);
    Alcotest.(check bool)
      (Printf.sprintf "cell %d" i)
      true
      (Tree_view.cell_oid m "t" i 1 = Tree_view.cell_oid m' "t" i 1)
  done;
  (* reverse lookup reconstructed *)
  let coid = Option.get (Tree_view.cell_oid m' "t" 2 0) in
  Alcotest.(check bool) "locate" true
    (Tree_view.locate m' coid = Some (Tree_view.Cell ("t", 2, 0)))

(* ---- participant / CA serialisation ---- *)

let test_participant_roundtrip () =
  let drbg = Tep_crypto.Drbg.create ~seed:"persist" in
  let ca = Tep_crypto.Pki.create_ca ~name:"CA" drbg in
  let p = Participant.create ~bits:512 ~ca ~name:"weird name |:@" drbg in
  match Participant.of_string (Participant.to_string p) with
  | None -> Alcotest.fail "roundtrip failed"
  | Some p' ->
      Alcotest.(check string) "name" (Participant.name p) (Participant.name p');
      (* restored credentials still sign verifiably *)
      let s = Participant.sign p' "payload" in
      Alcotest.(check bool) "signs" true
        (Tep_crypto.Rsa.verify ~algo:Tep_crypto.Digest_algo.SHA256
           (Participant.public_key p) ~msg:"payload" ~signature:s);
      Alcotest.(check bool) "cert intact" true
        (Tep_crypto.Pki.verify_certificate
           ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
           (Participant.certificate p'))

let test_participant_garbage () =
  Alcotest.(check bool) "garbage" true (Participant.of_string "junk" = None)

let test_ca_roundtrip () =
  let drbg = Tep_crypto.Drbg.create ~seed:"persist-ca" in
  let ca = Tep_crypto.Pki.create_ca ~name:"Root" drbg in
  let kp = Tep_crypto.Rsa.generate ~bits:512 drbg in
  let c1 = Tep_crypto.Pki.issue ca ~subject:"x" kp.Tep_crypto.Rsa.public in
  match Tep_crypto.Pki.ca_of_string (Tep_crypto.Pki.ca_to_string ca) with
  | None -> Alcotest.fail "CA roundtrip failed"
  | Some ca' ->
      (* serial counter continues; old certs still verify *)
      let c2 = Tep_crypto.Pki.issue ca' ~subject:"y" kp.Tep_crypto.Rsa.public in
      Alcotest.(check bool) "serial continues" true
        (c2.Tep_crypto.Pki.serial > c1.Tep_crypto.Pki.serial);
      Alcotest.(check bool) "old cert valid under restored CA key" true
        (Tep_crypto.Pki.verify_certificate
           ~ca_key:(Tep_crypto.Pki.ca_public_key ca')
           c1)

(* ---- full engine resume ---- *)

let test_engine_resume () =
  let drbg = Tep_crypto.Drbg.create ~seed:"resume" in
  let ca = Tep_crypto.Pki.create_ca ~name:"CA" drbg in
  let dir = Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca) in
  let alice = Participant.create ~bits:512 ~ca ~name:"alice" drbg in
  Participant.Directory.register dir alice;
  let db = Database.create ~name:"resume" in
  ignore (ok (Database.create_table db ~name:"t" (Schema.all_int [ "a" ])));
  let eng = Engine.create ~directory:dir db in
  (* session 1: mutate, including inserts/deletes that disturb the
     default layout *)
  let r0 = ok (Engine.insert_row eng alice ~table:"t" [| iv 1 |]) in
  let r1 = ok (Engine.insert_row eng alice ~table:"t" [| iv 2 |]) in
  ok (Engine.delete_row eng alice ~table:"t" r0);
  ok (Engine.update_cell eng alice ~table:"t" ~row:r1 ~col:0 (iv 3));
  (* persist everything *)
  let snap = Snapshot.to_string (Engine.backend eng) in
  let prov_s = Provstore.to_string (Engine.provstore eng) in
  let fbuf = Buffer.create 256 in
  Forest.encode fbuf (Engine.forest eng);
  let vbuf = Buffer.create 256 in
  Tree_view.encode vbuf (Engine.mapping eng);
  (* session 2: reload and verify the resumed state *)
  let db' = ok (Snapshot.of_string snap) in
  let prov' = ok (Provstore.of_string prov_s) in
  let forest', _ = Forest.decode (Buffer.contents fbuf) 0 in
  let view', _ = Tree_view.decode (Buffer.contents vbuf) 0 in
  let eng' = Engine.of_parts ~provstore:prov' ~directory:dir ~forest:forest' ~view:view' db' in
  let report = ok (Engine.verify_object eng' (Engine.root_oid eng')) in
  Alcotest.(check bool) "resumed state verifies" true (Verifier.ok report);
  (* continue the history: chains must extend, not fork *)
  ok (Engine.update_cell eng' alice ~table:"t" ~row:r1 ~col:0 (iv 4));
  let report = ok (Engine.verify_object eng' (Engine.root_oid eng')) in
  Alcotest.(check bool) "extended history verifies" true (Verifier.ok report);
  let cell = Option.get (Tree_view.cell_oid (Engine.mapping eng') "t" r1 0) in
  let recs = Provstore.records_for (Engine.provstore eng') cell in
  Alcotest.(check int) "cell chain continued" 3 (List.length recs);
  (* a fresh insert must not collide with the deleted row's oids *)
  let r2 = ok (Engine.insert_row eng' alice ~table:"t" [| iv 9 |]) in
  let roid2 = Option.get (Tree_view.row_oid (Engine.mapping eng') "t" r2) in
  List.iter
    (fun r ->
      Alcotest.(check bool) "no oid collision with history" true
        (not (Oid.equal r.Record.output_oid roid2)
        || r.Record.seq_id = 0))
    (Provstore.all (Engine.provstore eng'));
  let report = ok (Engine.verify_object eng' (Engine.root_oid eng')) in
  Alcotest.(check bool) "still verifies" true (Verifier.ok report)

let test_rebuild_vs_resume_divergence () =
  (* Demonstrates WHY of_parts exists: rebuilding the view after
     engine-driven inserts would assign different oids. *)
  let drbg = Tep_crypto.Drbg.create ~seed:"diverge" in
  let ca = Tep_crypto.Pki.create_ca ~name:"CA" drbg in
  let dir = Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca) in
  let alice = Participant.create ~bits:512 ~ca ~name:"alice" drbg in
  Participant.Directory.register dir alice;
  let db = Database.create ~name:"d" in
  ignore (ok (Database.create_table db ~name:"t" (Schema.all_int [ "a" ])));
  let eng = Engine.create ~directory:dir db in
  let r0 = ok (Engine.insert_row eng alice ~table:"t" [| iv 1 |]) in
  ok (Engine.delete_row eng alice ~table:"t" r0);
  let r1 = ok (Engine.insert_row eng alice ~table:"t" [| iv 2 |]) in
  let original = Option.get (Tree_view.row_oid (Engine.mapping eng) "t" r1) in
  (* a rebuilt view compacts oids -> different assignment *)
  let f2 = Forest.create () in
  let m2 = Tree_view.build f2 (Engine.backend eng) in
  let rebuilt = Option.get (Tree_view.row_oid m2 "t" r1) in
  Alcotest.(check bool) "rebuild diverges" false (Oid.equal original rebuilt)

let () =
  Alcotest.run "persistence"
    [
      ( "codecs",
        [
          Alcotest.test_case "forest roundtrip" `Quick test_forest_roundtrip;
          Alcotest.test_case "forest hash stable" `Quick
            test_forest_roundtrip_hash_stable;
          Alcotest.test_case "view roundtrip" `Quick test_view_roundtrip;
          QCheck_alcotest.to_alcotest prop_forest_roundtrip;
        ] );
      ( "credentials",
        [
          Alcotest.test_case "participant roundtrip" `Quick
            test_participant_roundtrip;
          Alcotest.test_case "participant garbage" `Quick
            test_participant_garbage;
          Alcotest.test_case "ca roundtrip" `Quick test_ca_roundtrip;
        ] );
      ( "engine",
        [
          Alcotest.test_case "resume" `Quick test_engine_resume;
          Alcotest.test_case "rebuild diverges (why of_parts)" `Quick
            test_rebuild_vs_resume_divergence;
        ] );
    ]
