(* End-to-end service tests.

   The loopback transport drives the server's connection state machine
   directly — same frames, codecs and session sealing as a socket —
   so most tests run deterministically in-process.  One test runs the
   full daemon loop over a real Unix-domain socket.

   The acceptance bar: reports received over the wire render
   byte-identically to the in-process Verifier/Audit on the same
   history, including after tampering. *)
open Tep_store
open Tep_tree
open Tep_core
open Tep_wire
module Server = Tep_server.Server
module Client = Tep_client.Client
module Fault = Tep_fault.Fault

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let make_env () =
  let drbg = Tep_crypto.Drbg.create ~seed:"service" in
  let ca = Tep_crypto.Pki.create_ca ~bits:512 ~name:"CA" drbg in
  let directory =
    Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
  in
  let alice = Participant.create ~bits:512 ~ca ~name:"alice" drbg in
  Participant.Directory.register directory alice;
  let db = Database.create ~name:"svc" in
  ignore
    (Database.create_table db ~name:"stock" (Schema.all_int [ "sku"; "qty" ]));
  let engine = Engine.create ~directory db in
  (engine, ca, directory, alice, drbg)

let make_server ?max_payload ?checkpoint engine alice =
  Server.create ?max_payload ?checkpoint
    ~drbg:(Tep_crypto.Drbg.create ~seed:"server")
    ~participants:[ ("alice", alice) ]
    engine

let make_client server =
  Client.loopback ~drbg:(Tep_crypto.Drbg.create ~seed:"client") server

let local_report engine oid =
  Format.asprintf "%a" Verifier.pp_report (ok (Engine.verify_object engine oid))

let records_bytes records = String.concat "|" (List.map Record.encoded records)

(* ------------------------------------------------------------------ *)
(* Loopback happy path                                                 *)
(* ------------------------------------------------------------------ *)

let test_loopback_session () =
  let engine, _, directory, alice, _ = make_env () in
  let server = make_server engine alice in
  let c = make_client server in
  ok (Client.authenticate c alice);
  Alcotest.(check bool) "authenticated" true (Client.authenticated c);
  (* submit: insert, update, delete *)
  let row, records = ok (Client.insert c ~table:"stock" [| Value.Int 1; Value.Int 10 |]) in
  Alcotest.(check bool) "insert emits records" true (records > 0);
  let row2, _ = ok (Client.insert c ~table:"stock" [| Value.Int 2; Value.Int 20 |]) in
  ignore (ok (Client.update c ~table:"stock" ~row ~col:1 (Value.Int 9)));
  ignore (ok (Client.delete c ~table:"stock" ~row:row2));
  (* root hash over the wire = in-process root hash *)
  Alcotest.(check string) "root hash" (Engine.root_hash engine)
    (ok (Client.root_hash c));
  (* provenance query: records byte-identical to in-process deliver *)
  let m = Engine.mapping engine in
  let row_oid =
    match Tree_view.row_oid m "stock" row with
    | Some o -> o
    | None -> Alcotest.fail "row oid"
  in
  let remote_records = ok (Client.query c ~oid:row_oid ()) in
  let _, local_records = ok (Engine.deliver engine row_oid) in
  Alcotest.(check string) "query records byte-identical"
    (records_bytes local_records) (records_bytes remote_records);
  (* aggregate *)
  let agg_oid, _ = ok (Client.aggregate c [ row_oid ]) in
  let agg_records = ok (Client.query c ~oid:agg_oid ()) in
  Alcotest.(check bool) "aggregate has provenance" true (agg_records <> []);
  (* verify: report byte-identical to the in-process verifier *)
  let report, store_audit = ok (Client.verify c ()) in
  Alcotest.(check string) "verify report byte-identical"
    (local_report engine (Engine.root_oid engine))
    (Message.render_report report);
  (match store_audit with
  | Some a -> Alcotest.(check bool) "store audit clean" true (Message.report_ok a)
  | None -> Alcotest.fail "whole-db verify must include a store audit");
  (* targeted verify *)
  let cell_report, none_audit = ok (Client.verify c ~oid:row_oid ()) in
  Alcotest.(check string) "targeted verify byte-identical"
    (local_report engine row_oid)
    (Message.render_report cell_report);
  Alcotest.(check bool) "targeted verify has no store audit" true
    (none_audit = None);
  (* audit: byte-identical to a local incremental audit from empty *)
  let remote_audit, examined, objects = ok (Client.audit c) in
  let local_audit, local_cp, local_examined =
    Audit.incremental_audit ~algo:(Engine.algo engine) ~directory Audit.empty
      (Engine.provstore engine)
  in
  Alcotest.(check string) "audit report byte-identical"
    (Format.asprintf "%a" Verifier.pp_report local_audit)
    (Message.render_report remote_audit);
  Alcotest.(check int) "examined" local_examined examined;
  Alcotest.(check int) "objects" (Audit.objects local_cp) objects;
  (* second audit examines only what is new (nothing) *)
  let _, examined2, _ = ok (Client.audit c) in
  Alcotest.(check int) "incremental audit examines nothing new" 0 examined2;
  Client.close c

let test_loopback_tamper_detected () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let c = make_client server in
  ok (Client.authenticate c alice);
  ignore (ok (Client.insert c ~table:"stock" [| Value.Int 1; Value.Int 10 |]));
  let report, _ = ok (Client.verify c ()) in
  Alcotest.(check bool) "clean before tampering" true (Message.report_ok report);
  (* mutate a cell behind the engine's back, like `provdb tamper` *)
  let forest = Engine.forest engine in
  let cell =
    match
      List.concat_map (fun r -> Forest.children forest r) (Forest.roots forest)
      |> List.concat_map (fun t -> Forest.children forest t)
      |> List.concat_map (fun r -> Forest.children forest r)
    with
    | c :: _ -> c
    | [] -> Alcotest.fail "no cells"
  in
  ignore (Forest.update forest cell (Value.Text "TAMPERED"));
  let report, _ = ok (Client.verify c ()) in
  Alcotest.(check bool) "tampering detected over the wire" false
    (Message.report_ok report);
  (* and the report still matches the in-process verifier byte-for-byte *)
  Alcotest.(check string) "tamper report byte-identical"
    (local_report engine (Engine.root_oid engine))
    (Message.render_report report)

let test_checkpoint_rpc () =
  let engine, _, _, alice, _ = make_env () in
  (* without checkpointing configured the RPC fails cleanly *)
  let bare = make_server engine alice in
  let c = make_client bare in
  ok (Client.authenticate c alice);
  (match Client.checkpoint c with
  | Error e ->
      Alcotest.(check bool) "reports failed" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "checkpoint without config must fail");
  (* with a checkpoint directory + WAL it writes a generation *)
  let dir = Filename.temp_file "tep_service_ckpt" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let wal = Wal.open_file (Filename.concat dir "wal.log") in
  let server = make_server ~checkpoint:(dir, wal) engine alice in
  let c2 = make_client server in
  ok (Client.authenticate c2 alice);
  ignore (ok (Client.insert c2 ~table:"stock" [| Value.Int 5; Value.Int 50 |]));
  let generation, _lsn = ok (Client.checkpoint c2) in
  Alcotest.(check bool) "generation written" true (generation >= 0);
  Alcotest.(check bool) "generation file exists" true
    (Sys.file_exists (Recovery.generation_path ~dir generation))

(* ------------------------------------------------------------------ *)
(* Authentication failures                                             *)
(* ------------------------------------------------------------------ *)

let test_auth_unknown_participant () =
  let engine, ca, _, alice, drbg = make_env () in
  let server = make_server engine alice in
  let c = make_client server in
  let mallory = Participant.create ~bits:512 ~ca ~name:"mallory" drbg in
  match Client.authenticate c mallory with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown participant must be rejected"

let test_auth_wrong_key () =
  let engine, ca, _, alice, drbg = make_env () in
  let server = make_server engine alice in
  let c = make_client server in
  (* same name, different keypair: the server checks the signature
     against the registered certificate, not the claimed identity *)
  let fake_alice = Participant.create ~bits:512 ~ca ~name:"alice" drbg in
  match Client.authenticate c fake_alice with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrong key must be rejected"

(* Raw-frame driving of the connection state machine, for cases the
   well-behaved client cannot produce. *)
let clear_frame req =
  Frame.to_string ~kind:Frame.Clear (Message.request_to_string req)

let parse_one s =
  match Frame.parse s 0 with
  | Frame.Frame { kind; payload; consumed } ->
      Alcotest.(check int) "single frame" (String.length s) consumed;
      (kind, payload)
  | _ -> Alcotest.fail "expected one complete frame"

let decode_resp payload = fst (Message.decode_response payload 0)

(* Established-channel messages are [varint cid · response] (framing
   v2); raw-frame tests strip the correlation id before decoding. *)
let decode_sealed_resp msg =
  match Message.read_cid msg with
  | Some (_, off) -> fst (Message.decode_response msg off)
  | None -> Alcotest.fail "sealed message missing correlation id"

let expect_error name s code =
  match parse_one s with
  | _, payload -> (
      match decode_resp payload with
      | Message.Error_resp { code = c; _ } ->
          Alcotest.(check string) name
            (Message.error_code_name code)
            (Message.error_code_name c)
      | _ -> Alcotest.fail (name ^ ": expected an error response"))

(* Drive the Hello → Challenge leg by hand; returns the server nonce. *)
let hello conn name =
  let client_nonce = String.make Session.nonce_len 'n' in
  let resp =
    Tep_server.Server.feed conn
      (clear_frame (Message.Hello { name; nonce = client_nonce }))
  in
  let server_nonce =
    match parse_one resp with
    | Frame.Clear, payload -> (
        match decode_resp payload with
        | Message.Challenge { nonce } -> nonce
        | _ -> Alcotest.fail "expected a challenge")
    | _ -> Alcotest.fail "challenge must be clear"
  in
  (client_nonce, server_nonce)

(* Drive the full handshake by hand; returns the session key and the
   sealed Auth_ok payload (for key-secrecy assertions). *)
let handshake_frames conn p =
  let name = Participant.name p in
  let client_nonce, server_nonce = hello conn name in
  let drbg = Tep_crypto.Drbg.create ~seed:("handshake-" ^ name) in
  let secret = Tep_crypto.Drbg.generate drbg Session.key_share_len in
  let key_share =
    Tep_crypto.Rsa.encrypt drbg (Participant.public_key p) secret
  in
  let transcript =
    Session.transcript ~name ~client_nonce ~server_nonce ~key_share
  in
  let signature = Participant.sign p transcript in
  let key = Session.derive_key ~transcript ~signature ~secret in
  let resp =
    Tep_server.Server.feed conn
      (clear_frame (Message.Auth { signature; key_share }))
  in
  let auth_ok =
    match parse_one resp with
    | Frame.Sealed, payload -> payload
    | _ -> Alcotest.fail "Auth_ok must be sealed"
  in
  (match Session.open_ ~key ~dir:Session.To_client ~seq:0 auth_ok with
  | Ok msg -> (
      match decode_sealed_resp msg with
      | Message.Auth_ok _ -> ()
      | _ -> Alcotest.fail "expected Auth_ok")
  | Error e -> Alcotest.fail ("Auth_ok failed to open: " ^ e));
  (key, `Wire_visible (transcript, signature), auth_ok)

let handshake conn p =
  let key, _, _ = handshake_frames conn p in
  key

(* The review-critical property: every handshake byte that crosses
   the wire (name, nonces, ciphertext, signature) is insufficient to
   derive the session key — the secret travels RSA-encrypted to the
   participant's certificate key. *)
let test_key_not_derivable_from_wire () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let conn = Tep_server.Server.conn server in
  let _key, `Wire_visible (transcript, signature), auth_ok =
    handshake_frames conn alice
  in
  List.iter
    (fun guess ->
      let eve = Session.derive_key ~transcript ~signature ~secret:guess in
      match Session.open_ ~key:eve ~dir:Session.To_client ~seq:0 auth_ok with
      | Error _ -> ()
      | Ok _ ->
          Alcotest.fail "key derived from wire-visible data opened a frame")
    [ ""; String.make Session.key_share_len '\x00'; transcript; signature ]

(* A signed Auth whose key share is not a well-formed RSA ciphertext
   must be rejected, not crash the decryptor. *)
let test_bad_key_share_rejected () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let conn = Tep_server.Server.conn server in
  let name = Participant.name alice in
  let client_nonce, server_nonce = hello conn name in
  let key_share = "not an rsa ciphertext" in
  let transcript =
    Session.transcript ~name ~client_nonce ~server_nonce ~key_share
  in
  let signature = Participant.sign alice transcript in
  let resp =
    Tep_server.Server.feed conn
      (clear_frame (Message.Auth { signature; key_share }))
  in
  expect_error "bad key share" resp Message.Auth_failed

(* Tampering with the encrypted key share breaks the signature that
   covers it — the server refuses before ever decrypting. *)
let test_tampered_key_share_rejected () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let conn = Tep_server.Server.conn server in
  let name = Participant.name alice in
  let client_nonce, server_nonce = hello conn name in
  let drbg = Tep_crypto.Drbg.create ~seed:"tampered-share" in
  let secret = Tep_crypto.Drbg.generate drbg Session.key_share_len in
  let key_share =
    Tep_crypto.Rsa.encrypt drbg (Participant.public_key alice) secret
  in
  let transcript =
    Session.transcript ~name ~client_nonce ~server_nonce ~key_share
  in
  let signature = Participant.sign alice transcript in
  let flipped =
    String.mapi
      (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c)
      key_share
  in
  let resp =
    Tep_server.Server.feed conn
      (clear_frame (Message.Auth { signature; key_share = flipped }))
  in
  expect_error "tampered key share" resp Message.Auth_failed

let test_pre_auth_request_rejected () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let conn = Tep_server.Server.conn server in
  (* a clear Query before the handshake *)
  let resp = Tep_server.Server.feed conn (clear_frame (Message.Query None)) in
  expect_error "pre-auth request" resp Message.Auth_required;
  Alcotest.(check string) "connection dead" ""
    (Tep_server.Server.feed conn (clear_frame (Message.Query None)))

let test_sealed_frame_pre_auth_rejected () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let conn = Tep_server.Server.conn server in
  let resp =
    Tep_server.Server.feed conn (Frame.to_string ~kind:Frame.Sealed "garbage")
  in
  expect_error "sealed pre-auth" resp Message.Auth_required

let test_bad_mac_and_replay_rejected () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let conn = Tep_server.Server.conn server in
  let key = handshake conn alice in
  (* sealed with the wrong sequence number (replay/reorder) *)
  let sealed =
    Session.seal ~key ~dir:Session.To_server ~seq:5
      (Message.request_to_string Message.Root_hash)
  in
  let resp =
    Tep_server.Server.feed conn (Frame.to_string ~kind:Frame.Sealed sealed)
  in
  (match parse_one resp with
  | Frame.Sealed, payload -> (
      (* the error still arrives sealed: the session key exists *)
      match Session.open_ ~key ~dir:Session.To_client ~seq:1 payload with
      | Ok msg -> (
          match decode_sealed_resp msg with
          | Message.Error_resp { code = Message.Auth_failed; _ } -> ()
          | _ -> Alcotest.fail "expected auth-failed")
      | Error e -> Alcotest.fail ("error response failed to open: " ^ e))
  | _ -> Alcotest.fail "expected a sealed error");
  Alcotest.(check string) "connection dead" ""
    (Tep_server.Server.feed conn (clear_frame Message.Root_hash))

let test_clear_frame_post_auth_rejected () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let conn = Tep_server.Server.conn server in
  let _key = handshake conn alice in
  let resp = Tep_server.Server.feed conn (clear_frame Message.Root_hash) in
  match parse_one resp with
  | Frame.Sealed, _ -> () (* sealed error response; connection dies *)
  | _ -> Alcotest.fail "expected a sealed error response"

(* ------------------------------------------------------------------ *)
(* Malformed input and fault injection                                 *)
(* ------------------------------------------------------------------ *)

let test_corrupt_frame_rejected () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let conn = Tep_server.Server.conn server in
  let resp = Tep_server.Server.feed conn "not a frame at all" in
  expect_error "corrupt frame" resp Message.Bad_request;
  Alcotest.(check string) "connection dead" ""
    (Tep_server.Server.feed conn (clear_frame (Message.Query None)))

let test_oversized_frame_rejected () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server ~max_payload:64 engine alice in
  let conn = Tep_server.Server.conn server in
  let resp =
    Tep_server.Server.feed conn
      (Frame.to_string ~kind:Frame.Clear (String.make 100 'x'))
  in
  expect_error "oversized frame" resp Message.Too_large

let test_torn_read_then_recovers () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let conn = Tep_server.Server.conn server in
  Fault.reset ();
  let hello =
    clear_frame (Message.Hello { name = "alice"; nonce = String.make 16 'n' })
  in
  (* half the bytes are torn off in flight: no response yet *)
  Fault.arm "wire.server.read" (Fault.Torn_write 0.5);
  let torn_len = String.length hello / 2 in
  Alcotest.(check string) "torn read: no frame yet" ""
    (Tep_server.Server.feed conn (String.sub hello 0 torn_len));
  Fault.reset ();
  (* the peer retransmits the missing tail; the frame completes *)
  let resp =
    Tep_server.Server.feed conn
      (String.sub hello (torn_len / 2) (String.length hello - torn_len / 2))
  in
  (match parse_one resp with
  | Frame.Clear, payload -> (
      match decode_resp payload with
      | Message.Challenge _ -> ()
      | _ -> Alcotest.fail "expected a challenge after reassembly")
  | _ -> Alcotest.fail "expected a clear challenge")

let test_bit_flip_rejected () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let hello =
    clear_frame (Message.Hello { name = "alice"; nonce = String.make 16 'n' })
  in
  (* A flipped bit in the length field leaves the parser waiting for a
     frame that never completes; a flip anywhere else trips the CRC.
     Either way a corrupted frame must never be accepted, and across a
     handful of deterministic seeds the CRC path must fire. *)
  let rejected = ref 0 in
  for i = 0 to 15 do
    let conn = Tep_server.Server.conn server in
    Fault.reset ();
    Fault.seed (Printf.sprintf "bitflip-%d" i);
    Fault.arm "wire.server.read" Fault.Bit_flip;
    let resp = Tep_server.Server.feed conn hello in
    Fault.reset ();
    match resp with
    | "" -> () (* length garbled: parser is stuck waiting, not fooled *)
    | s -> (
        match parse_one s with
        | Frame.Clear, payload -> (
            match decode_resp payload with
            | Message.Error_resp { code = Message.Bad_request; _ } ->
                incr rejected;
                Alcotest.(check string) "connection dead" ""
                  (Tep_server.Server.feed conn hello)
            | Message.Challenge _ ->
                Alcotest.fail "corrupted frame was accepted"
            | _ -> Alcotest.fail "unexpected response to corrupted frame")
        | _ -> Alcotest.fail "unexpected sealed response")
  done;
  Alcotest.(check bool) "frame CRC fired at least once" true (!rejected > 0)

(* A response that would exceed the frame limit degrades to an
   in-band Too_large error instead of an oversized frame the client
   must treat as abusive; the session stays usable. *)
let test_oversized_response_degrades () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server ~max_payload:220 engine alice in
  let c = make_client server in
  ok (Client.authenticate c alice);
  ignore (ok (Client.insert c ~table:"stock" [| Value.Int 1; Value.Int 10 |]));
  ignore (ok (Client.insert c ~table:"stock" [| Value.Int 2; Value.Int 20 |]));
  (match Client.query c () with
  | Ok _ -> Alcotest.fail "oversized Records response must not be framed"
  | Error e ->
      Alcotest.(check bool)
        ("too-large error, got: " ^ e)
        true
        (String.length e >= 9 && String.sub e 0 9 = "too-large"));
  (* the connection survives: small responses still flow *)
  Alcotest.(check string) "root hash still served" (Engine.root_hash engine)
    (ok (Client.root_hash c));
  Client.close c

(* ------------------------------------------------------------------ *)
(* Real Unix-domain socket                                             *)
(* ------------------------------------------------------------------ *)

let test_unix_socket_end_to_end () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let path = Filename.temp_file "tep_service" ".sock" in
  Sys.remove path;
  let stop = Stdlib.Atomic.make false in
  let th =
    Thread.create (fun () -> Server.serve_unix server ~path ~stop) ()
  in
  Fun.protect
    ~finally:(fun () ->
      Stdlib.Atomic.set stop true;
      Server.wake server;
      Thread.join th;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let c =
        ok
          (Client.connect_unix
             ~drbg:(Tep_crypto.Drbg.create ~seed:"sock-client")
             path)
      in
      ok (Client.authenticate c alice);
      let _row, records =
        ok (Client.insert c ~table:"stock" [| Value.Int 7; Value.Int 70 |])
      in
      Alcotest.(check bool) "socket insert emits records" true (records > 0);
      let report, _ = ok (Client.verify c ()) in
      Alcotest.(check string) "socket verify byte-identical"
        (local_report engine (Engine.root_oid engine))
        (Message.render_report report);
      Alcotest.(check string) "socket root hash" (Engine.root_hash engine)
        (ok (Client.root_hash c));
      Client.close c)

(* Past max_connections concurrent sockets, new connections are
   rejected with an advisory error instead of spawning unbounded
   threads; the slot frees when a connection closes. *)
let test_connection_cap () =
  let engine, _, _, alice, _ = make_env () in
  let server =
    Server.create ~max_connections:1
      ~drbg:(Tep_crypto.Drbg.create ~seed:"cap-server")
      ~participants:[ ("alice", alice) ]
      engine
  in
  let path = Filename.temp_file "tep_service_cap" ".sock" in
  Sys.remove path;
  let stop = Stdlib.Atomic.make false in
  let th = Thread.create (fun () -> Server.serve_unix server ~path ~stop) () in
  Fun.protect
    ~finally:(fun () ->
      Stdlib.Atomic.set stop true;
      Server.wake server;
      Thread.join th;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let connect seed =
        ok
          (Client.connect_unix ~drbg:(Tep_crypto.Drbg.create ~seed) path)
      in
      let c1 = connect "cap-c1" in
      ok (Client.authenticate c1 alice);
      (* the cap is held by c1: a second connection must not succeed *)
      let c2 = connect "cap-c2" in
      (match Client.authenticate c2 alice with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "over-capacity connection must be rejected");
      Client.close c2;
      Client.close c1;
      (* the slot frees once the server notices c1 closed *)
      let rec retry n =
        let c3 = connect (Printf.sprintf "cap-c3-%d" n) in
        match Client.authenticate c3 alice with
        | Ok () -> Client.close c3
        | Error e ->
            Client.close c3;
            if n = 0 then Alcotest.fail ("slot never freed: " ^ e)
            else begin
              Thread.delay 0.05;
              retry (n - 1)
            end
      in
      retry 100)

(* ------------------------------------------------------------------ *)
(* Pipelining and dispatch concurrency                                 *)
(* ------------------------------------------------------------------ *)

let parse_frames s =
  let rec go off acc =
    if off >= String.length s then List.rev acc
    else
      match Frame.parse s off with
      | Frame.Frame { kind; payload; consumed } ->
          go (off + consumed) ((kind, payload) :: acc)
      | _ -> Alcotest.fail "expected a run of complete frames"
  in
  go 0 []

(* Several requests in flight on one connection; responses collected
   newest-first, so the earlier ones must be stashed by correlation
   id and handed out when their own collect comes. *)
let test_pipelined_out_of_order () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let c = make_client server in
  ok (Client.authenticate c alice);
  let cid_a =
    ok (Client.insert_async c ~table:"stock" [| Value.Int 1; Value.Int 10 |])
  in
  let cid_b =
    ok (Client.insert_async c ~table:"stock" [| Value.Int 2; Value.Int 20 |])
  in
  let cid_c = ok (Client.request_async c Message.Root_hash) in
  Alcotest.(check bool) "cids distinct" true (cid_a <> cid_b && cid_b <> cid_c);
  (match ok (Client.collect c cid_c) with
  | Message.Root { hash } ->
      Alcotest.(check string) "pipelined root hash" (Engine.root_hash engine)
        hash
  | _ -> Alcotest.fail "expected Root");
  let row_b, _, _ = ok (Client.collect_submitted c cid_b) in
  let row_a, _, _ = ok (Client.collect_submitted c cid_a) in
  (match (row_a, row_b) with
  | Some a, Some b ->
      Alcotest.(check bool) "rows follow request order" true (a < b)
  | _ -> Alcotest.fail "inserts must return rows");
  (* the session survives out-of-order collection; blocking calls and
     the byte-identity acceptance bar still hold on the same wire *)
  let report, _ = ok (Client.verify c ()) in
  Alcotest.(check string) "verify byte-identical after pipelining"
    (local_report engine (Engine.root_oid engine))
    (Message.render_report report);
  Client.close c

(* Two pipelined Submits arriving in one input chunk must coalesce
   into a single group commit (one signing pass, one WAL unit), while
   each response still echoes its own correlation id. *)
let test_pipelined_submits_coalesce () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let conn = Tep_server.Server.conn server in
  let key = handshake conn alice in
  let submit cid seq cells =
    let msg =
      Message.with_cid cid
        (Message.request_to_string
           (Message.Submit (Message.Op_insert { table = "stock"; cells })))
    in
    Frame.to_string ~kind:Frame.Sealed
      (Session.seal ~key ~dir:Session.To_server ~seq msg)
  in
  let chunk =
    submit 1 0 [| Value.Int 1; Value.Int 10 |]
    ^ submit 2 1 [| Value.Int 2; Value.Int 20 |]
  in
  let before = Server.batch_stats server in
  let frames = parse_frames (Tep_server.Server.feed conn chunk) in
  Alcotest.(check int) "two responses" 2 (List.length frames);
  List.iteri
    (fun i (kind, payload) ->
      if kind <> Frame.Sealed then Alcotest.fail "expected sealed responses";
      (* the server's seq 0 went to Auth_ok *)
      match Session.open_ ~key ~dir:Session.To_client ~seq:(i + 1) payload with
      | Error e -> Alcotest.fail ("response failed to open: " ^ e)
      | Ok msg -> (
          match Message.read_cid msg with
          | None -> Alcotest.fail "response missing correlation id"
          | Some (cid, off) -> (
              Alcotest.(check int) "cid echoes request order" (i + 1) cid;
              match fst (Message.decode_response msg off) with
              | Message.Submitted { row = Some _; records; _ } ->
                  Alcotest.(check bool) "records emitted" true (records > 0)
              | _ -> Alcotest.fail "expected Submitted")))
    frames;
  let after = Server.batch_stats server in
  Alcotest.(check int) "one group commit" 1
    (after.Server.batches - before.Server.batches);
  Alcotest.(check int) "carrying both ops" 2
    (after.Server.ops - before.Server.ops);
  Alcotest.(check bool) "signing time recorded" true
    (after.Server.sign_wall_s > before.Server.sign_wall_s
    && after.Server.sign_cpu_s > before.Server.sign_cpu_s);
  (* one commit, yet both rows have provenance the verifier accepts *)
  match Engine.verify_object engine (Engine.root_oid engine) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("verify after coalesced commit: " ^ e)

(* The read/write split: a verify held in flight (slow-verify
   failpoint) must not serialise other connections' read-only
   requests behind it.  Under the old single-mutex dispatch the root
   hash below would wait out the full delay. *)
let test_concurrent_readers_not_serialised () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let c1 = make_client server in
  let c2 =
    Client.loopback ~drbg:(Tep_crypto.Drbg.create ~seed:"client-reader") server
  in
  ok (Client.authenticate c1 alice);
  ok (Client.authenticate c2 alice);
  ignore (ok (Client.insert c1 ~table:"stock" [| Value.Int 1; Value.Int 10 |]));
  Fault.reset ();
  Fault.arm "server.dispatch.verify" (Fault.Delay 0.4);
  let verify_done = ref 0. in
  let th =
    Thread.create
      (fun () ->
        let report, _ = ok (Client.verify c1 ()) in
        verify_done := Unix.gettimeofday ();
        Alcotest.(check bool) "slow verify still clean" true
          (Message.report_ok report))
      ()
  in
  Thread.delay 0.1;
  (* the verify is now asleep inside the shared read lock *)
  let t0 = Unix.gettimeofday () in
  Alcotest.(check string) "root hash served during the verify"
    (Engine.root_hash engine)
    (ok (Client.root_hash c2));
  ignore (ok (Client.query c2 ()));
  let reads_done = Unix.gettimeofday () in
  Thread.join th;
  Fault.reset ();
  Alcotest.(check bool) "reads overlapped the in-flight verify" true
    (reads_done -. t0 < 0.25 && reads_done < !verify_done)

(* Group commit atomicity: while every WAL flush fails, submits from
   two concurrent connections must all be rejected — durability cannot
   be confirmed for any op of a failing batch — and the engine must
   come back clean: usable immediately, recoverable from disk. *)
let test_group_commit_wal_failure_atomic () =
  let drbg = Tep_crypto.Drbg.create ~seed:"service-gc" in
  let ca = Tep_crypto.Pki.create_ca ~bits:512 ~name:"CA" drbg in
  let directory =
    Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
  in
  let alice = Participant.create ~bits:512 ~ca ~name:"alice" drbg in
  Participant.Directory.register directory alice;
  let db = Database.create ~name:"svc" in
  ignore
    (Database.create_table db ~name:"stock" (Schema.all_int [ "sku"; "qty" ]));
  let dir = Filename.temp_file "tep_service_gc" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let wal = Wal.open_file (Filename.concat dir "wal.log") in
  let engine = Engine.create ~wal ~directory db in
  let server = make_server ~checkpoint:(dir, wal) engine alice in
  let c1 = make_client server in
  let c2 =
    Client.loopback ~drbg:(Tep_crypto.Drbg.create ~seed:"client-2") server
  in
  ok (Client.authenticate c1 alice);
  ok (Client.authenticate c2 alice);
  Fault.reset ();
  Fault.arm "wal.flush" (Fault.Transient 50);
  let r1 = ref (Error "unset") and r2 = ref (Error "unset") in
  let th1 =
    Thread.create
      (fun () ->
        r1 := Client.insert c1 ~table:"stock" [| Value.Int 1; Value.Int 10 |])
      ()
  in
  let th2 =
    Thread.create
      (fun () ->
        r2 := Client.insert c2 ~table:"stock" [| Value.Int 2; Value.Int 20 |])
      ()
  in
  Thread.join th1;
  Thread.join th2;
  Fault.reset ();
  (match (!r1, !r2) with
  | Error _, Error _ -> ()
  | _ -> Alcotest.fail "a submit survived a failing WAL flush");
  (* not wedged: the next submit commits cleanly *)
  let _row, records =
    ok (Client.insert c1 ~table:"stock" [| Value.Int 3; Value.Int 30 |])
  in
  Alcotest.(check bool) "engine usable after batch failure" true (records > 0);
  let report, _ = ok (Client.verify c1 ()) in
  Alcotest.(check bool) "verify clean after batch failure" true
    (Message.report_ok report);
  (* and recoverable: checkpoint, then rebuild the engine from disk *)
  let _generation = ok (Client.checkpoint c1) in
  match Recovery.recover ~final_checkpoint:false ~dir ~directory () with
  | Error e -> Alcotest.fail ("recovery failed: " ^ e)
  | Ok (recovered, rwal, rep) ->
      Wal.close rwal;
      Alcotest.(check bool) "recovered hash verified" true
        rep.Recovery.hash_verified;
      Alcotest.(check string) "recovered root matches the live engine"
        (Engine.root_hash engine)
        (Engine.root_hash recovered)

(* Connect retry backoff: reproducible from the client's DRBG seed,
   decorrelated between seeds, pinned to the historical 2^i schedule
   when no DRBG is supplied, always within the +/-50% jitter window. *)
let test_retry_jitter_deterministic () =
  List.iteri
    (fun i d ->
      Alcotest.(check (float 1e-9))
        "no drbg: historical schedule"
        (0.05 *. (2. ** float_of_int i))
        d)
    (Client.retry_delays ());
  let schedule seed =
    Client.retry_delays ~drbg:(Tep_crypto.Drbg.create ~seed) ()
  in
  let a = schedule "jitter-a" in
  Alcotest.(check (list (float 1e-12)))
    "same seed, same schedule" a (schedule "jitter-a");
  Alcotest.(check bool) "different seeds decorrelate" true
    (a <> schedule "jitter-b");
  List.iteri
    (fun i d ->
      let base = 0.05 *. (2. ** float_of_int i) in
      Alcotest.(check bool)
        "jitter stays within [0.5x, 1.5x)" true
        (d >= 0.5 *. base && d < 1.5 *. base))
    a

(* Batcher stats over the wire: the Stats RPC reflects the group
   commits a session drove, including the signing-time split newly
   carried in Engine.metrics. *)
let test_stats_rpc () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let c = make_client server in
  ok (Client.authenticate c alice);
  let s0 = ok (Client.stats c) in
  let _ = ok (Client.insert c ~table:"stock" [| Value.Int 1; Value.Int 10 |]) in
  let row, _ = ok (Client.insert c ~table:"stock" [| Value.Int 2; Value.Int 20 |]) in
  ignore (ok (Client.update c ~table:"stock" ~row ~col:1 (Value.Int 21)));
  let s1 = ok (Client.stats c) in
  Alcotest.(check int) "ops counted" 3 (s1.Client.ops - s0.Client.ops);
  Alcotest.(check bool) "batches advanced" true
    (s1.Client.batches > s0.Client.batches);
  Alcotest.(check bool) "signing wall time advanced" true
    (s1.Client.sign_wall_us > s0.Client.sign_wall_us);
  (* each commit signs sequentially here (no pool), so cumulative CPU
     can only exceed or match the stage wall clock it is part of *)
  Alcotest.(check bool) "cpu >= 0 and >= nothing weird" true
    (s1.Client.sign_cpu_us >= s0.Client.sign_cpu_us
    && s1.Client.sign_cpu_us > 0);
  (* server-side view agrees with the wire's microsecond rounding *)
  let local = Server.batch_stats server in
  Alcotest.(check int) "wire batches = server batches" local.Server.batches
    s1.Client.batches;
  Alcotest.(check int) "wire ops = server ops" local.Server.ops s1.Client.ops;
  Alcotest.(check int) "wire wall us = server wall us"
    (int_of_float (local.Server.sign_wall_s *. 1e6))
    s1.Client.sign_wall_us

(* ------------------------------------------------------------------ *)
(* Fault tolerance: dedup, admission, breaker, drain, capacity         *)
(* ------------------------------------------------------------------ *)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let op_insert sku qty =
  Message.Op_insert
    { table = "stock"; cells = [| Value.Int sku; Value.Int qty |] }

let stock_rows engine =
  Table.row_count (Database.get_table_exn (Engine.backend engine) "stock")

(* A blind client retry of a write it already got an answer for: the
   dedup table must replay the cached response, not the operation. *)
let test_duplicate_request_id () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let c = make_client server in
  ok (Client.authenticate c alice);
  let before = Server.batch_stats server in
  let row1, _, _ = ok (Client.submit_idem c ~rid:"dup-0" (op_insert 1 10)) in
  let row2, _, _ = ok (Client.submit_idem c ~rid:"dup-0" (op_insert 1 10)) in
  Alcotest.(check (option int)) "retry echoes the cached row" row1 row2;
  Alcotest.(check int) "executed exactly once" 1 (stock_rows engine);
  let after = Server.batch_stats server in
  Alcotest.(check int) "dedup hit visible in batch_stats" 1
    (after.Server.dedup_hits - before.Server.dedup_hits);
  Alcotest.(check int) "only one op reached the engine" 1
    (after.Server.ops - before.Server.ops);
  Client.close c

(* Two requests with the same rid inside one pipelined chunk: the
   second must alias the first's slot within the batch instead of
   deadlocking on its own pending entry or executing twice. *)
let test_duplicate_rid_in_one_batch () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let conn = Tep_server.Server.conn server in
  let key = handshake conn alice in
  let submit cid seq =
    let msg =
      Message.with_cid cid
        (Message.request_to_string
           (Message.Submit_idem { rid = "batch-dup"; op = op_insert 1 10 }))
    in
    Frame.to_string ~kind:Frame.Sealed
      (Session.seal ~key ~dir:Session.To_server ~seq msg)
  in
  let frames =
    parse_frames (Tep_server.Server.feed conn (submit 1 0 ^ submit 2 1))
  in
  Alcotest.(check int) "two responses" 2 (List.length frames);
  let rows =
    List.mapi
      (fun i (kind, payload) ->
        if kind <> Frame.Sealed then Alcotest.fail "expected sealed responses";
        match Session.open_ ~key ~dir:Session.To_client ~seq:(i + 1) payload with
        | Error e -> Alcotest.fail ("response failed to open: " ^ e)
        | Ok msg -> (
            match Message.read_cid msg with
            | None -> Alcotest.fail "response missing correlation id"
            | Some (_, off) -> (
                match fst (Message.decode_response msg off) with
                | Message.Submitted { row = Some r; _ } -> r
                | _ -> Alcotest.fail "expected Submitted")))
      frames
  in
  (match rows with
  | [ a; b ] -> Alcotest.(check int) "duplicate aliases the same row" a b
  | _ -> assert false);
  Alcotest.(check int) "executed exactly once" 1 (stock_rows engine);
  let s = Server.batch_stats server in
  Alcotest.(check int) "in-batch alias counted as a dedup hit" 1
    s.Server.dedup_hits;
  Alcotest.(check int) "one op committed" 1 s.Server.ops

(* A WAL flush failure must surface as its typed wire error and tick
   the wal_failures counter — an operator can tell a sick disk from a
   logic bug without reading logs. *)
let test_wal_failure_typed_and_counted () =
  let drbg = Tep_crypto.Drbg.create ~seed:"service-walfail" in
  let ca = Tep_crypto.Pki.create_ca ~bits:512 ~name:"CA" drbg in
  let directory =
    Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
  in
  let alice = Participant.create ~bits:512 ~ca ~name:"alice" drbg in
  Participant.Directory.register directory alice;
  let db = Database.create ~name:"svc" in
  ignore
    (Database.create_table db ~name:"stock" (Schema.all_int [ "sku"; "qty" ]));
  let dir = Filename.temp_file "tep_service_walfail" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let wal = Wal.open_file (Filename.concat dir "wal.log") in
  let engine = Engine.create ~wal ~directory db in
  let server = make_server ~checkpoint:(dir, wal) engine alice in
  let c = make_client server in
  ok (Client.authenticate c alice);
  Fault.reset ();
  Fault.arm "wal.flush" (Fault.Transient 10);
  (match Client.submit_idem c ~rid:"wal-0" (op_insert 1 10) with
  | Ok _ -> Alcotest.fail "a submit survived a failing WAL flush"
  | Error e ->
      Alcotest.(check bool)
        ("typed wal error, got: " ^ e)
        true (contains e "wal"));
  Fault.reset ();
  let s = Server.batch_stats server in
  Alcotest.(check int) "wal failure counted in batch_stats" 1
    s.Server.wal_failures;
  (* a wal-failed outcome must NOT be cached in the dedup table: the
     client was told nothing durable happened, so the same rid retried
     must re-execute — and now succeed *)
  ignore (ok (Client.submit_idem c ~rid:"wal-0" (op_insert 1 10)));
  let s = Server.batch_stats server in
  Alcotest.(check int) "the retry re-executed (no dedup replay)" 0
    s.Server.dedup_hits;
  let report, _ = ok (Client.verify c ()) in
  Alcotest.(check bool) "verify clean after the wal failure" true
    (Message.report_ok report)

(* Admission control: a shed write carries the typed overload error
   with the retry hint, ticks the shed counter, and never blocks
   reads; lifting the limit restores writes. *)
let test_admission_shed_and_recover () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let c = make_client server in
  ok (Client.authenticate c alice);
  Server.set_admission ~max_queue_ops:(-1) ~retry_after_ms:7 server;
  (match Client.insert c ~table:"stock" [| Value.Int 1; Value.Int 10 |] with
  | Ok _ -> Alcotest.fail "shed-all admission accepted a write"
  | Error e ->
      Alcotest.(check bool)
        ("typed overload with retry hint, got: " ^ e)
        true
        (contains e "overloaded" && contains e "retry after 7 ms"));
  let s = Server.batch_stats server in
  Alcotest.(check int) "shed counted in batch_stats" 1 s.Server.shed;
  Alcotest.(check string) "reads are never shed" (Engine.root_hash engine)
    (ok (Client.root_hash c));
  Server.set_admission ~max_queue_ops:512 server;
  ignore (ok (Client.insert c ~table:"stock" [| Value.Int 1; Value.Int 10 |]));
  Alcotest.(check int) "write accepted once admission recovers" 1
    (stock_rows engine);
  Client.close c

(* The client circuit breaker: consecutive overload rejections trip
   it, tripped writes fail fast without touching the server, a failed
   half-open probe re-opens it, a successful probe closes it. *)
let test_circuit_breaker () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let c = make_client server in
  ok (Client.authenticate c alice);
  let clock = ref 1000.0 in
  Client.set_breaker ~threshold:2 ~cooldown:10.0 ~now:(fun () -> !clock) c;
  Server.set_admission ~max_queue_ops:(-1) server;
  let must_fail label =
    match Client.insert c ~table:"stock" [| Value.Int 1; Value.Int 10 |] with
    | Ok _ -> Alcotest.fail (label ^ ": write must fail")
    | Error e -> e
  in
  ignore (must_fail "shed 1");
  ignore (must_fail "shed 2");
  Alcotest.(check bool) "two consecutive rejections trip the breaker" true
    (Client.breaker_state c = `Open);
  let e = must_fail "tripped" in
  Alcotest.(check bool)
    ("tripped writes fail fast, got: " ^ e)
    true
    (contains e "circuit breaker");
  let s = Server.batch_stats server in
  Alcotest.(check int) "the fast-fail never reached the server" 2
    s.Server.shed;
  Alcotest.(check string) "reads bypass the breaker" (Engine.root_hash engine)
    (ok (Client.root_hash c));
  (* cooldown elapses; the half-open probe hits a still-shedding
     server and re-opens the breaker *)
  clock := !clock +. 11.0;
  let e = must_fail "failed probe" in
  Alcotest.(check bool)
    ("the probe reached the server, got: " ^ e)
    true (contains e "overloaded");
  Alcotest.(check bool) "failed probe re-opens" true
    (Client.breaker_state c = `Open);
  (* next cooldown: the server has recovered; the probe succeeds and
     the breaker closes *)
  Server.set_admission ~max_queue_ops:512 server;
  clock := !clock +. 11.0;
  ignore (ok (Client.insert c ~table:"stock" [| Value.Int 2; Value.Int 20 |]));
  Alcotest.(check bool) "successful probe closes the breaker" true
    (Client.breaker_state c = `Closed);
  ignore (ok (Client.insert c ~table:"stock" [| Value.Int 3; Value.Int 30 |]));
  Client.close c

(* Drain: a draining server refuses new writes with the terminal
   shutting-down error (not the retryable overload), keeps serving
   reads and health probes, and quiesces. *)
let test_drain_refuses_writes () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let c = make_client server in
  ok (Client.authenticate c alice);
  ignore (ok (Client.insert c ~table:"stock" [| Value.Int 1; Value.Int 10 |]));
  Server.begin_drain server;
  (match Client.insert c ~table:"stock" [| Value.Int 2; Value.Int 20 |] with
  | Ok _ -> Alcotest.fail "draining server accepted a write"
  | Error e ->
      Alcotest.(check bool)
        ("terminal shutting-down error, got: " ^ e)
        true (contains e "draining"));
  Alcotest.(check string) "reads stay up during the drain"
    (Engine.root_hash engine)
    (ok (Client.root_hash c));
  let h = ok (Client.ping c) in
  Alcotest.(check bool) "pong reports the drain" true
    (h.Client.draining && not h.Client.ready);
  Alcotest.(check bool) "quiesce settles" true (Server.quiesce ~timeout:2. server);
  Alcotest.(check int) "no write leaked past the drain" 1 (stock_rows engine);
  Client.close c

(* Connection dropped mid-submit, over a real socket: the crash
   failpoint kills the server side of the connection on the next bytes
   it reads, so the client's write is in flight when the transport
   dies.  The client must transparently reconnect, re-authenticate and
   replay the idempotent write — exactly once. *)
let test_reconnect_replays_dropped_submit () =
  let engine, _, _, alice, _ = make_env () in
  let server = make_server engine alice in
  let path = Filename.temp_file "tep_service_drop" ".sock" in
  Sys.remove path;
  let stop = Stdlib.Atomic.make false in
  let th = Thread.create (fun () -> Server.serve_unix server ~path ~stop) () in
  Fun.protect
    ~finally:(fun () ->
      Fault.reset ();
      Stdlib.Atomic.set stop true;
      Server.wake server;
      Thread.join th;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let c =
        ok
          (Client.connect_unix
             ~drbg:(Tep_crypto.Drbg.create ~seed:"drop-client")
             path)
      in
      ok (Client.authenticate c alice);
      ignore
        (ok (Client.insert c ~table:"stock" [| Value.Int 1; Value.Int 10 |]));
      Fault.reset ();
      Fault.arm "wire.server.read" Fault.Crash_point;
      let row, _, _ = ok (Client.submit_idem c ~rid:"drop-0" (op_insert 2 20)) in
      Fault.reset ();
      Alcotest.(check bool) "replayed insert returns a row" true (row <> None);
      Alcotest.(check int) "exactly once across the drop" 2 (stock_rows engine);
      (* the replayed session is fully usable *)
      Alcotest.(check string) "root hash after the replay"
        (Engine.root_hash engine)
        (ok (Client.root_hash c));
      Client.close c)

(* Regression for the capacity-accounting leak: every connection exit
   path — clean close, over-capacity rejection, handler death — must
   return its slot, so the active gauge settles back to zero and the
   capacity stays usable. *)
let test_capacity_returns_to_zero () =
  let engine, _, _, alice, _ = make_env () in
  let server =
    Server.create ~max_connections:2
      ~drbg:(Tep_crypto.Drbg.create ~seed:"cap0-server")
      ~participants:[ ("alice", alice) ]
      engine
  in
  let path = Filename.temp_file "tep_service_cap0" ".sock" in
  Sys.remove path;
  let stop = Stdlib.Atomic.make false in
  let th = Thread.create (fun () -> Server.serve_unix server ~path ~stop) () in
  Fun.protect
    ~finally:(fun () ->
      Stdlib.Atomic.set stop true;
      Server.wake server;
      Thread.join th;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let connect seed =
        ok (Client.connect_unix ~drbg:(Tep_crypto.Drbg.create ~seed) path)
      in
      (* a freed slot may take a beat to release: retry the connect *)
      let rec auth_connect seed n =
        let c = connect (Printf.sprintf "%s-%d" seed n) in
        match Client.authenticate c alice with
        | Ok () -> c
        | Error e ->
            Client.close c;
            if n = 0 then Alcotest.fail ("no capacity: " ^ e)
            else begin
              Thread.delay 0.05;
              auth_connect seed (n - 1)
            end
      in
      for round = 0 to 2 do
        let c1 = auth_connect (Printf.sprintf "cap0-a%d" round) 100 in
        let c2 = auth_connect (Printf.sprintf "cap0-b%d" round) 100 in
        (* both slots held: the next connection is rejected — and its
           rejection must not consume a slot *)
        let c3 = connect (Printf.sprintf "cap0-c%d" round) in
        (match Client.authenticate c3 alice with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "over-capacity connection accepted");
        Client.close c3;
        Client.close c2;
        Client.close c1
      done;
      let rec settle n =
        if Server.active_connections server = 0 then ()
        else if n = 0 then
          Alcotest.failf "connection slots leaked: %d still held"
            (Server.active_connections server)
        else begin
          Thread.delay 0.05;
          settle (n - 1)
        end
      in
      settle 100;
      (* the freed capacity is actually usable *)
      let c = auth_connect "cap0-final" 100 in
      Client.close c)

let () =
  Alcotest.run "service"
    [
      ( "loopback",
        [
          Alcotest.test_case "session end-to-end" `Quick test_loopback_session;
          Alcotest.test_case "tamper detected" `Quick
            test_loopback_tamper_detected;
          Alcotest.test_case "checkpoint rpc" `Quick test_checkpoint_rpc;
          Alcotest.test_case "stats rpc" `Quick test_stats_rpc;
        ] );
      ( "auth",
        [
          Alcotest.test_case "unknown participant" `Quick
            test_auth_unknown_participant;
          Alcotest.test_case "wrong key" `Quick test_auth_wrong_key;
          Alcotest.test_case "key not derivable from wire" `Quick
            test_key_not_derivable_from_wire;
          Alcotest.test_case "bad key share" `Quick test_bad_key_share_rejected;
          Alcotest.test_case "tampered key share" `Quick
            test_tampered_key_share_rejected;
          Alcotest.test_case "pre-auth request" `Quick
            test_pre_auth_request_rejected;
          Alcotest.test_case "pre-auth sealed frame" `Quick
            test_sealed_frame_pre_auth_rejected;
          Alcotest.test_case "bad MAC / replay" `Quick
            test_bad_mac_and_replay_rejected;
          Alcotest.test_case "clear frame post-auth" `Quick
            test_clear_frame_post_auth_rejected;
        ] );
      ( "faults",
        [
          Alcotest.test_case "corrupt frame" `Quick test_corrupt_frame_rejected;
          Alcotest.test_case "oversized frame" `Quick
            test_oversized_frame_rejected;
          Alcotest.test_case "torn read" `Quick test_torn_read_then_recovers;
          Alcotest.test_case "bit flip" `Quick test_bit_flip_rejected;
          Alcotest.test_case "oversized response degrades" `Quick
            test_oversized_response_degrades;
        ] );
      ( "socket",
        [
          Alcotest.test_case "unix socket end-to-end" `Quick
            test_unix_socket_end_to_end;
          Alcotest.test_case "connection cap" `Quick test_connection_cap;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "out-of-order collect" `Quick
            test_pipelined_out_of_order;
          Alcotest.test_case "submits coalesce" `Quick
            test_pipelined_submits_coalesce;
          Alcotest.test_case "concurrent readers" `Quick
            test_concurrent_readers_not_serialised;
          Alcotest.test_case "group-commit WAL failure" `Quick
            test_group_commit_wal_failure_atomic;
          Alcotest.test_case "retry jitter" `Quick
            test_retry_jitter_deterministic;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "duplicate request id" `Quick
            test_duplicate_request_id;
          Alcotest.test_case "duplicate rid in one batch" `Quick
            test_duplicate_rid_in_one_batch;
          Alcotest.test_case "wal failure typed + counted" `Quick
            test_wal_failure_typed_and_counted;
          Alcotest.test_case "admission shedding" `Quick
            test_admission_shed_and_recover;
          Alcotest.test_case "circuit breaker" `Quick test_circuit_breaker;
          Alcotest.test_case "drain refuses writes" `Quick
            test_drain_refuses_writes;
          Alcotest.test_case "reconnect replays dropped submit" `Quick
            test_reconnect_replays_dropped_submit;
          Alcotest.test_case "capacity returns to zero" `Quick
            test_capacity_returns_to_zero;
        ] );
    ]
