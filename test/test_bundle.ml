(* Delivery bundles: packaging, serialisation, recipient verification,
   trust-anchor handling. *)
open Tep_store
open Tep_tree
open Tep_core

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let fixture () =
  let drbg = Tep_crypto.Drbg.create ~seed:"test-bundle" in
  let ca = Tep_crypto.Pki.create_ca ~name:"CA" drbg in
  let dir = Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca) in
  let mk name =
    let p = Participant.create ~bits:512 ~ca ~name drbg in
    Participant.Directory.register dir p;
    p
  in
  let alice = mk "alice" and bob = mk "bob" in
  let db = Database.create ~name:"b" in
  ignore (ok (Database.create_table db ~name:"t" (Schema.all_int [ "a" ])));
  let eng = Engine.create ~directory:dir db in
  let row = ok (Engine.insert_row eng alice ~table:"t" [| Value.Int 1 |]) in
  ok (Engine.update_cell eng bob ~table:"t" ~row ~col:0 (Value.Int 2));
  (ca, dir, eng, drbg)

let test_create_and_verify () =
  let _, _, eng, _ = fixture () in
  let b = ok (Bundle.create eng (Engine.root_oid eng)) in
  Alcotest.(check (list string)) "participants" [ "alice"; "bob" ]
    (Bundle.participants b);
  Alcotest.(check int) "two certs" 2 (List.length b.Bundle.certificates);
  let report = Bundle.verify b in
  Alcotest.(check bool) "verifies" true (Verifier.ok report)

let test_serialisation_roundtrip () =
  let _, _, eng, _ = fixture () in
  let b = ok (Bundle.create eng (Engine.root_oid eng)) in
  let b' = ok (Bundle.of_string (Bundle.to_string b)) in
  Alcotest.(check int) "records" (List.length b.Bundle.records)
    (List.length b'.Bundle.records);
  Alcotest.(check bool) "data equal" true (Subtree.equal b.Bundle.data b'.Bundle.data);
  Alcotest.(check bool) "verifies after roundtrip" true
    (Verifier.ok (Bundle.verify b'))

let test_corruption_rejected () =
  let _, _, eng, _ = fixture () in
  let b = ok (Bundle.create eng (Engine.root_oid eng)) in
  let s = Bytes.of_string (Bundle.to_string b) in
  Bytes.set s (Bytes.length s / 3)
    (Char.chr (Char.code (Bytes.get s (Bytes.length s / 3)) lxor 1));
  match Bundle.of_string (Bytes.to_string s) with
  | Ok _ -> Alcotest.fail "corrupt bundle accepted"
  | Error _ -> ()

let test_file_roundtrip () =
  let _, _, eng, _ = fixture () in
  let b = ok (Bundle.create eng (Engine.root_oid eng)) in
  let path = Filename.temp_file "tep_bundle" ".tep" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with _ -> ())
    (fun () ->
      ok (Bundle.save b path);
      let b' = ok (Bundle.load path) in
      Alcotest.(check bool) "verifies" true (Verifier.ok (Bundle.verify b')))

let test_trusted_ca_mismatch () =
  let _, _, eng, drbg = fixture () in
  let b = ok (Bundle.create eng (Engine.root_oid eng)) in
  (* a recipient whose trust anchor is a DIFFERENT CA must reject *)
  let other_ca = Tep_crypto.Pki.create_ca ~bits:512 ~name:"Other" drbg in
  let report =
    Bundle.verify ~trusted_ca:(Tep_crypto.Pki.ca_public_key other_ca) b
  in
  Alcotest.(check bool) "foreign anchor rejects" false (Verifier.ok report)

let test_forged_ca_swap () =
  (* a forger replaces the embedded CA and certificates with his own,
     but cannot re-sign other participants' records *)
  let _, _, eng, drbg = fixture () in
  let b = ok (Bundle.create eng (Engine.root_oid eng)) in
  let evil_ca = Tep_crypto.Pki.create_ca ~bits:512 ~name:"CA" drbg in
  let evil_certs =
    List.map
      (fun (c : Tep_crypto.Pki.certificate) ->
        let kp = Tep_crypto.Rsa.generate ~bits:512 drbg in
        Tep_crypto.Pki.issue evil_ca ~subject:c.Tep_crypto.Pki.subject
          kp.Tep_crypto.Rsa.public)
      b.Bundle.certificates
  in
  let forged =
    {
      b with
      Bundle.ca_key = Tep_crypto.Pki.ca_public_key evil_ca;
      certificates = evil_certs;
    }
  in
  (* even trusting the embedded (evil) anchor, record signatures fail:
     the attacker does not hold alice's or bob's true keys *)
  let report = Bundle.verify forged in
  Alcotest.(check bool) "swap detected" false (Verifier.ok report)

let test_tampered_data_in_bundle () =
  let _, _, eng, _ = fixture () in
  let b = ok (Bundle.create eng (Engine.root_oid eng)) in
  let forged = { b with Bundle.data = Tamper.tamper_data_value b.Bundle.data } in
  Alcotest.(check bool) "detected" false (Verifier.ok (Bundle.verify forged))

let test_atomic_bundle () =
  let drbg = Tep_crypto.Drbg.create ~seed:"test-bundle-atomic" in
  let ca = Tep_crypto.Pki.create_ca ~name:"CA" drbg in
  let dir = Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca) in
  let alice = Participant.create ~bits:512 ~ca ~name:"alice" drbg in
  Participant.Directory.register dir alice;
  let s = Atomic.create dir in
  let a, _ = Atomic.insert s alice (Value.Int 1) in
  ignore (ok (Atomic.update s alice a (Value.Int 2)));
  let b = ok (Bundle.of_atomic s dir a) in
  Alcotest.(check bool) "verifies" true (Verifier.ok (Bundle.verify b));
  Alcotest.(check int) "2 records" 2 (List.length b.Bundle.records)

let () =
  Alcotest.run "bundle"
    [
      ( "unit",
        [
          Alcotest.test_case "create & verify" `Quick test_create_and_verify;
          Alcotest.test_case "serialisation" `Quick
            test_serialisation_roundtrip;
          Alcotest.test_case "corruption rejected" `Quick
            test_corruption_rejected;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "trusted CA mismatch" `Quick
            test_trusted_ca_mismatch;
          Alcotest.test_case "forged CA swap" `Quick test_forged_ca_swap;
          Alcotest.test_case "tampered data" `Quick
            test_tampered_data_in_bundle;
          Alcotest.test_case "atomic bundle" `Quick test_atomic_bundle;
        ] );
    ]
