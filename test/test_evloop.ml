(* Event-loop service path tests.

   Everything here runs over real Unix-domain sockets against the
   {!Evloop} reactor (with one explicit run of the legacy
   thread-per-connection fallback for parity): protocol correctness,
   isolation of well-behaved neighbours from slow-loris tricklers and
   malformed peers, the idle-connection reaper, connection-slot
   accounting at three-digit connection counts, and the partial-write
   / EAGAIN-storm failpoints on the reactor's write path. *)
open Tep_store
open Tep_core
open Tep_wire
module Server = Tep_server.Server
module Evloop = Tep_server.Evloop
module Client = Tep_client.Client
module Fault = Tep_fault.Fault

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let make_env () =
  let drbg = Tep_crypto.Drbg.create ~seed:"evloop" in
  let ca = Tep_crypto.Pki.create_ca ~bits:512 ~name:"CA" drbg in
  let directory =
    Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
  in
  let alice = Participant.create ~bits:512 ~ca ~name:"alice" drbg in
  Participant.Directory.register directory alice;
  let db = Database.create ~name:"svc" in
  ignore
    (Database.create_table db ~name:"stock" (Schema.all_int [ "sku"; "qty" ]));
  let engine = Engine.create ~directory db in
  (engine, alice)

let local_report engine oid =
  Format.asprintf "%a" Verifier.pp_report (ok (Engine.verify_object engine oid))

(* Serve a fresh single-shard server on a temp socket, hand the body
   the pieces, and tear the loop down through the wake path (no
   reliance on the 1 s housekeeping backstop). *)
let with_unix_server ?(io_mode = Server.Event { workers = 2 }) ?idle_timeout
    ?max_connections body =
  let engine, alice = make_env () in
  let server =
    Server.create ~io_mode ?idle_timeout ?max_connections
      ~drbg:(Tep_crypto.Drbg.create ~seed:"evloop-server")
      ~participants:[ ("alice", alice) ]
      engine
  in
  let path = Filename.temp_file "tep_evloop" ".sock" in
  Sys.remove path;
  let stop = Stdlib.Atomic.make false in
  let th = Thread.create (fun () -> Server.serve_unix server ~path ~stop) () in
  let rec await n =
    if not (Sys.file_exists path) then
      if n = 0 then Alcotest.fail "server socket never appeared"
      else begin
        Thread.delay 0.02;
        await (n - 1)
      end
  in
  await 250;
  Fun.protect
    ~finally:(fun () ->
      Stdlib.Atomic.set stop true;
      Server.wake server;
      Thread.join th;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> body ~engine ~alice ~server ~path)

let connect ?(seed = "ev-client") path =
  let rec go n =
    match Client.connect_unix ~drbg:(Tep_crypto.Drbg.create ~seed) path with
    | Ok c -> c
    | Error e ->
        if n = 0 then Alcotest.fail e
        else begin
          Thread.delay 0.05;
          go (n - 1)
        end
  in
  go 20

let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let hello_frame =
  Frame.to_string ~kind:Frame.Clear
    (Message.request_to_string
       (Message.Hello { name = "alice"; nonce = String.make 16 'n' }))

(* ------------------------------------------------------------------ *)
(* End-to-end parity                                                   *)
(* ------------------------------------------------------------------ *)

(* The full authenticated workload over a socket: submits, queries,
   verify — every wire answer byte-identical to the in-process engine,
   exactly as test_service asserts for the legacy path. *)
let run_end_to_end ~io_mode () =
  with_unix_server ~io_mode (fun ~engine ~alice ~server:_ ~path ->
      let c = connect path in
      ok (Client.authenticate c alice);
      let row, records =
        ok (Client.insert c ~table:"stock" [| Value.Int 1; Value.Int 10 |])
      in
      Alcotest.(check bool) "insert emits records" true (records > 0);
      for i = 2 to 10 do
        ignore
          (ok
             (Client.insert c ~table:"stock"
                [| Value.Int i; Value.Int (10 * i) |]))
      done;
      ignore (ok (Client.update c ~table:"stock" ~row ~col:1 (Value.Int 9)));
      Alcotest.(check string)
        "root hash" (Engine.root_hash engine)
        (ok (Client.root_hash c));
      let report, _ = ok (Client.verify c ()) in
      Alcotest.(check string) "verify report byte-identical"
        (local_report engine (Engine.root_oid engine))
        (Message.render_report report);
      Client.close c)

let test_event_end_to_end () =
  run_end_to_end ~io_mode:(Server.Event { workers = 2 }) ()

let test_threaded_end_to_end () = run_end_to_end ~io_mode:Server.Threaded ()

(* ------------------------------------------------------------------ *)
(* Slow-loris isolation                                                *)
(* ------------------------------------------------------------------ *)

(* One peer trickling a handshake frame a byte every 50 ms must not
   add latency to a well-behaved client: the reactor treats the
   trickler as just another readable fd, never a blocked thread.  The
   p95 bound is loose (250 ms vs single-digit-ms typical) so it only
   fails on structural convoying, not on a noisy machine. *)
let test_slow_loris () =
  with_unix_server (fun ~engine:_ ~alice ~server:_ ~path ->
      let stop_trickle = Stdlib.Atomic.make false in
      let trickler =
        Thread.create
          (fun () ->
            let fd = raw_connect path in
            let i = ref 0 in
            (try
               while
                 (not (Stdlib.Atomic.get stop_trickle))
                 && !i < String.length hello_frame
               do
                 ignore (Unix.write_substring fd hello_frame !i 1);
                 incr i;
                 Thread.delay 0.05
               done
             with Unix.Unix_error _ -> ());
            try Unix.close fd with Unix.Unix_error _ -> ())
          ()
      in
      let c = connect path in
      ok (Client.authenticate c alice);
      let n = 40 in
      let lat =
        Array.init n (fun i ->
            let t0 = Unix.gettimeofday () in
            ignore
              (ok
                 (Client.insert c ~table:"stock"
                    [| Value.Int i; Value.Int i |]));
            Unix.gettimeofday () -. t0)
      in
      Stdlib.Atomic.set stop_trickle true;
      Thread.join trickler;
      Array.sort compare lat;
      let p95 = lat.(int_of_float (ceil (0.95 *. float_of_int n)) - 1) in
      Alcotest.(check bool)
        (Printf.sprintf "insert p95 %.1f ms under slow-loris (bound 250 ms)"
           (p95 *. 1000.))
        true (p95 < 0.25);
      Client.close c)

(* ------------------------------------------------------------------ *)
(* Malformed frame mid-stream                                          *)
(* ------------------------------------------------------------------ *)

(* A peer that completes a valid handshake exchange and then sends
   garbage gets an error frame and a disconnect — and its neighbour
   on the same reactor notices nothing. *)
let test_malformed_midstream () =
  with_unix_server (fun ~engine ~alice ~server:_ ~path ->
      let c = connect path in
      ok (Client.authenticate c alice);
      ignore (ok (Client.insert c ~table:"stock" [| Value.Int 1; Value.Int 1 |]));
      let fd = raw_connect path in
      ignore (Unix.write_substring fd hello_frame 0 (String.length hello_frame));
      let buf = Bytes.create 4096 in
      let read_with_timeout () =
        match Unix.select [ fd ] [] [] 5.0 with
        | [], _, _ -> Alcotest.fail "server never answered the malformed peer"
        | _ -> (
            match Unix.read fd buf 0 (Bytes.length buf) with
            | n -> n
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
              ->
                0)
      in
      Alcotest.(check bool)
        "handshake answered" true
        (read_with_timeout () > 0);
      (* now a frame that cannot parse: wrong magic, full header size *)
      let garbage = String.make 64 'Z' in
      ignore (Unix.write_substring fd garbage 0 (String.length garbage));
      let rec drain_to_eof budget =
        if budget = 0 then
          Alcotest.fail "server did not disconnect the malformed peer"
        else if read_with_timeout () > 0 then drain_to_eof (budget - 1)
      in
      drain_to_eof 100;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (* the authenticated neighbour is undisturbed *)
      ignore (ok (Client.insert c ~table:"stock" [| Value.Int 2; Value.Int 2 |]));
      Alcotest.(check string)
        "neighbour still served" (Engine.root_hash engine)
        (ok (Client.root_hash c));
      Client.close c)

(* ------------------------------------------------------------------ *)
(* Idle reaper                                                         *)
(* ------------------------------------------------------------------ *)

let test_idle_reaper () =
  with_unix_server ~idle_timeout:0.4 (fun ~engine:_ ~alice ~server ~path ->
      let idle = connect ~seed:"ev-idle" path in
      ok (Client.authenticate idle alice);
      let active = connect ~seed:"ev-active" path in
      ok (Client.authenticate active alice);
      Alcotest.(check int)
        "both connections held" 2
        (Server.active_connections server);
      (* keep one connection busy well past the idle deadline (the
         wheel has 1 s granularity, so give it headroom) *)
      let deadline = Unix.gettimeofday () +. 6.0 in
      let rec churn () =
        ignore (ok (Client.root_hash active));
        if
          Server.active_connections server > 1
          && Unix.gettimeofday () < deadline
        then begin
          Thread.delay 0.1;
          churn ()
        end
      in
      churn ();
      Alcotest.(check int)
        "idle connection reaped, slot released" 1
        (Server.active_connections server);
      let h = ok (Client.ping active) in
      Alcotest.(check bool)
        "reap counted in Ping stats" true
        (h.Client.h_reaped >= 1);
      Alcotest.(check int)
        "server-side reap counter agrees" h.Client.h_reaped
        (Server.reaped_connections server);
      (* the active connection was never reaped *)
      ignore (ok (Client.root_hash active));
      Client.close active)

(* ------------------------------------------------------------------ *)
(* Write-path failpoints                                               *)
(* ------------------------------------------------------------------ *)

(* Partial write: the reactor must keep the tail buffered and finish
   on the next POLLOUT; EAGAIN storm: five consecutive zero-byte
   write attempts must only delay, never corrupt or drop. *)
let test_write_failpoints () =
  with_unix_server (fun ~engine ~alice ~server:_ ~path ->
      Fun.protect ~finally:Fault.reset (fun () ->
          let c = connect path in
          ok (Client.authenticate c alice);
          ignore
            (ok (Client.insert c ~table:"stock" [| Value.Int 5; Value.Int 50 |]));
          Fault.arm "evloop.conn.write" (Fault.Torn_write 0.3);
          let report, _ = ok (Client.verify c ()) in
          Alcotest.(check string) "verify intact across a partial write"
            (local_report engine (Engine.root_oid engine))
            (Message.render_report report);
          Alcotest.(check int)
            "partial-write failpoint fired" 0
            (if Fault.enabled () then 1 else 0);
          Fault.arm "evloop.conn.write" (Fault.Transient 5);
          Alcotest.(check string)
            "root hash intact across an EAGAIN storm"
            (Engine.root_hash engine)
            (ok (Client.root_hash c));
          Client.close c))

(* ------------------------------------------------------------------ *)
(* Connection-slot accounting at scale                                 *)
(* ------------------------------------------------------------------ *)

(* 100 idle raw connections plus one active client: every one holds a
   slot, the active client is unaffected, and closing the idles
   returns every slot. *)
let test_many_connections () =
  with_unix_server ~max_connections:200
    (fun ~engine:_ ~alice ~server ~path ->
      let idles = List.init 100 (fun _ -> raw_connect path) in
      let c = connect path in
      ok (Client.authenticate c alice);
      ignore (ok (Client.insert c ~table:"stock" [| Value.Int 9; Value.Int 90 |]));
      let rec await n =
        if Server.active_connections server < 101 && n > 0 then begin
          Thread.delay 0.05;
          await (n - 1)
        end
      in
      await 100;
      Alcotest.(check int)
        "101 connections held" 101
        (Server.active_connections server);
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        idles;
      let rec drain n =
        if Server.active_connections server > 1 && n > 0 then begin
          Thread.delay 0.05;
          drain (n - 1)
        end
      in
      drain 100;
      Alcotest.(check int)
        "all idle slots released on close" 1
        (Server.active_connections server);
      ignore (ok (Client.root_hash c));
      Client.close c)

(* ------------------------------------------------------------------ *)
(* Wake after shutdown                                                 *)
(* ------------------------------------------------------------------ *)

(* A server-level waker can fire in the window after [Evloop.run] has
   torn down its wakeup pipe but before the embedder unregisters the
   waker (Server.serve_event does exactly that ordering).  The late
   wake must be a guarded no-op: no exception and no stray byte
   written into an unrelated fd that reuses the pipe's number. *)
let test_wake_after_shutdown () =
  let loop =
    Evloop.create
      (Evloop.default_config ~on_accept:(fun _ -> Evloop.Reject "full"))
  in
  let listen = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let path = Filename.temp_file "tep_evloop" ".sock" in
  Sys.remove path;
  Unix.bind listen (Unix.ADDR_UNIX path);
  let stop = Stdlib.Atomic.make false in
  let th = Thread.create (fun () -> Evloop.run loop ~listen ~stop) () in
  Thread.delay 0.05;
  Stdlib.Atomic.set stop true;
  Evloop.wake loop;
  Thread.join th;
  (try Sys.remove path with Sys_error _ -> ());
  (* fresh fds on a quiet fd table reuse the numbers the loop just
     released — exactly the aliasing scenario under test *)
  let r, w = Unix.pipe () in
  Evloop.wake loop;
  Evloop.wake loop;
  (match Unix.select [ r ] [] [] 0.05 with
  | [], _, _ -> ()
  | _ -> Alcotest.fail "late wake wrote into a reused fd");
  Unix.close r;
  Unix.close w

let () =
  Alcotest.run "evloop"
    [
      ( "reactor",
        [
          Alcotest.test_case "event loop end-to-end" `Quick
            test_event_end_to_end;
          Alcotest.test_case "threaded fallback end-to-end" `Quick
            test_threaded_end_to_end;
          Alcotest.test_case "slow-loris isolation" `Quick test_slow_loris;
          Alcotest.test_case "malformed frame mid-stream" `Quick
            test_malformed_midstream;
          Alcotest.test_case "idle reaper" `Quick test_idle_reaper;
          Alcotest.test_case "write failpoints" `Quick test_write_failpoints;
          Alcotest.test_case "100 idle connections" `Quick
            test_many_connections;
          Alcotest.test_case "wake after shutdown" `Quick
            test_wake_after_shutdown;
        ] );
    ]
