(* Adversarial-input fuzzing: every decoder must reject arbitrary
   bytes with a clean error (Failure / Error result), never crash or
   loop; and every field of every record is tamper-sensitive. *)
open Tep_store
open Tep_tree
open Tep_core

let gen_bytes = QCheck2.Gen.(string_size ~gen:char (int_range 0 200))

(* A decoder "survives" if it either parses or raises Failure /
   Invalid_argument — anything else (eg. out-of-bounds, stack
   overflow, division) fails the property. *)
let survives f =
  match f () with
  | _ -> true
  | exception (Failure _ | Invalid_argument _) -> true
  | exception _ -> false

let fuzz name f =
  QCheck2.Test.make ~name ~count:2000 gen_bytes (fun s -> survives (fun () -> f s))

let fuzz_decoders =
  [
    fuzz "Value.decode" (fun s -> ignore (Value.decode s 0));
    fuzz "Schema.decode" (fun s -> ignore (Schema.decode s 0));
    fuzz "Table.decode" (fun s -> ignore (Table.decode s 0));
    fuzz "Database.decode" (fun s -> ignore (Database.decode s 0));
    fuzz "Wal.decode_entry" (fun s -> ignore (Wal.decode_entry s 0));
    fuzz "Subtree.decode" (fun s -> ignore (Subtree.decode s 0));
    fuzz "Forest.decode" (fun s -> ignore (Forest.decode s 0));
    fuzz "Tree_view.decode" (fun s -> ignore (Tree_view.decode s 0));
    fuzz "Record.decode" (fun s -> ignore (Record.decode s 0));
    fuzz "Snapshot.of_string" (fun s ->
        match Snapshot.of_string s with Ok _ | Error _ -> ());
    fuzz "Provstore.of_string" (fun s ->
        match Provstore.of_string s with Ok _ | Error _ -> ());
    fuzz "Bundle.of_string" (fun s ->
        match Bundle.of_string s with Ok _ | Error _ -> ());
    fuzz "Audit.of_string" (fun s ->
        match Audit.of_string s with Ok _ | Error _ -> ());
    fuzz "Proof.decode" (fun s -> ignore (Proof.decode s 0));
    (* the total decoder must never raise at all — wire input is
       adversarial, and an escaping exception would kill the client
       transport or the server connection *)
    QCheck2.Test.make ~name:"Proof.of_encoded total" ~count:2000 gen_bytes
      (fun s ->
        match Proof.of_encoded s with Ok _ | Error _ -> true);
    QCheck2.Test.make ~name:"Proof.of_encoded 'P'-prefixed total"
      ~count:2000 gen_bytes
      (fun s ->
        match Proof.of_encoded ("P" ^ s) with Ok _ | Error _ -> true);
    fuzz "Slice.of_string" (fun s ->
        match Slice.of_string s with Ok _ | Error _ -> ());
    fuzz "Pki.certificate_of_string" (fun s ->
        ignore (Tep_crypto.Pki.certificate_of_string s));
    fuzz "Pki.ca_of_string" (fun s -> ignore (Tep_crypto.Pki.ca_of_string s));
    fuzz "Participant.of_string" (fun s -> ignore (Participant.of_string s));
    fuzz "Rsa.public_of_string" (fun s ->
        ignore (Tep_crypto.Rsa.public_of_string s));
    fuzz "Frame.parse" (fun s -> ignore (Tep_wire.Frame.parse s 0));
    fuzz "Message.decode_request" (fun s ->
        ignore (Tep_wire.Message.decode_request s 0));
    fuzz "Message.decode_response" (fun s ->
        ignore (Tep_wire.Message.decode_response s 0));
  ]

(* WAL salvage must accept ANY byte string: worst case is an empty
   entry list plus damage counters, never an exception.  Exercised
   both bare (v1 parse) and under the v2 magic (framed parse). *)
let salvage_tmp = lazy (Filename.temp_file "tep_fuzz_wal" ".log")

let salvage_of_bytes s =
  let path = Lazy.force salvage_tmp in
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc;
  match Wal.salvage_file path with
  | Ok sv ->
      (* sanity of the damage report, not just absence of exceptions *)
      sv.Wal.bytes_salvaged >= 0
      && sv.Wal.bytes_salvaged <= String.length s
      && sv.Wal.skipped_frames >= 0
  | Error _ -> false (* the file exists; I/O must succeed *)

let fuzz_salvage =
  [
    QCheck2.Test.make ~name:"Wal.salvage arbitrary bytes" ~count:2000 gen_bytes
      salvage_of_bytes;
    QCheck2.Test.make ~name:"Wal.salvage v2 magic + arbitrary bytes"
      ~count:2000 gen_bytes
      (fun s -> salvage_of_bytes ("TEPWAL2\n" ^ s));
  ]

(* Corrupting a valid encoding must either fail to parse or parse to
   something the verifier/integrity layer rejects — never silently
   yield the original. *)
let fixture =
  lazy
    (let drbg = Tep_crypto.Drbg.create ~seed:"fuzz" in
     let ca = Tep_crypto.Pki.create_ca ~bits:512 ~name:"CA" drbg in
     let dir =
       Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
     in
     let alice = Participant.create ~bits:512 ~ca ~name:"alice" drbg in
     Participant.Directory.register dir alice;
     let db = Database.create ~name:"f" in
     ignore (Database.create_table db ~name:"t" (Schema.all_int [ "a" ]));
     let eng = Engine.create ~directory:dir db in
     (match Engine.insert_row eng alice ~table:"t" [| Value.Int 1 |] with
     | Ok r -> (
         match Engine.update_cell eng alice ~table:"t" ~row:r ~col:0 (Value.Int 2) with
         | Ok () -> ()
         | Error e -> failwith e)
     | Error e -> failwith e);
     (eng, alice, dir))

let prop_bundle_bitflip =
  QCheck2.Test.make ~name:"any bundle bitflip is rejected or detected"
    ~count:150
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 0 7))
    (fun (pos, bit) ->
      let eng, _, _ = Lazy.force fixture in
      let b =
        match Bundle.create eng (Engine.root_oid eng) with
        | Ok b -> b
        | Error e -> failwith e
      in
      let s = Bundle.to_string b in
      let pos = pos mod String.length s in
      let flipped =
        String.mapi
          (fun i c ->
            if i = pos then Char.chr (Char.code c lxor (1 lsl bit)) else c)
          s
      in
      match Bundle.of_string flipped with
      | Error _ -> true (* trailer caught it *)
      | Ok b' -> not (Verifier.ok (Bundle.verify b')))

(* Any single field mutation of any record must be detected. *)
type field_pick = Fseq | Fpart | Fihash | Fohash | Fprev | Fcksum | Finherited

let gen_field =
  QCheck2.Gen.oneofl [ Fseq; Fpart; Fihash; Fohash; Fprev; Fcksum; Finherited ]

let mutate_record field (r : Record.t) =
  let bump s = if s = "" then "x" else String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c) s in
  match field with
  | Fseq -> { r with Record.seq_id = r.Record.seq_id + 1 }
  | Fpart ->
      {
        r with
        Record.participant =
          (if r.Record.participant = "alice" then "mallory" else "alice");
      }
  | Fihash -> (
      match r.Record.input_hashes with
      | [] -> { r with Record.input_hashes = [ "injected" ] }
      | h :: rest -> { r with Record.input_hashes = bump h :: rest })
  | Fohash -> { r with Record.output_hash = bump r.Record.output_hash }
  | Fprev -> (
      match r.Record.prev_checksums with
      | [] -> { r with Record.prev_checksums = [ "injected" ] }
      | c :: rest -> { r with Record.prev_checksums = bump c :: rest })
  | Fcksum -> { r with Record.checksum = bump r.Record.checksum }
  | Finherited -> { r with Record.inherited = not r.Record.inherited }

let prop_any_field_tamper_detected =
  QCheck2.Test.make ~name:"any record-field mutation is detected" ~count:200
    QCheck2.Gen.(pair (int_range 0 1000) gen_field)
    (fun (pick, field) ->
      let eng, _, dir = Lazy.force fixture in
      let data, records =
        match Engine.deliver eng (Engine.root_oid eng) with
        | Ok x -> x
        | Error e -> failwith e
      in
      QCheck2.assume (records <> []);
      let idx = pick mod List.length records in
      let tampered =
        List.mapi (fun i r -> if i = idx then mutate_record field r else r) records
      in
      (* `inherited` is display metadata, not covered by the signature;
         every other field must trip the verifier *)
      let report = Verifier.verify ~algo:(Engine.algo eng) ~directory:dir ~data tampered in
      match field with
      | Finherited -> true
      | _ -> not (Verifier.ok report))

let () =
  Alcotest.run "fuzz"
    [
      ("decoders", List.map QCheck_alcotest.to_alcotest fuzz_decoders);
      ("salvage", List.map QCheck_alcotest.to_alcotest fuzz_salvage);
      ( "integrity",
        List.map QCheck_alcotest.to_alcotest
          [ prop_bundle_bitflip; prop_any_field_tamper_detected ] );
    ]
