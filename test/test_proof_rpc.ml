(* Wire v6: O(log n) remote verification.

   Membership-proof RPCs (Prove / Proof_resp) and the DRBG-seeded
   sampled audit (Audit_sample), exercised over the loopback
   transport — same frames, codecs and session sealing as a socket.

   The trust model under test: the client pins ONE root hash it
   already trusts and rechecks everything the server claims against
   it — shard roots must recombine into the pinned root, each proof
   must hash-chain its leaf to the owning shard's root, and each
   leaf's provenance records must pass full recipient-side R1–R8
   verification with the proven (oid, value) snapshot as the
   delivered object.  Any single flipped byte anywhere in that chain
   must surface as an error or a report violation. *)
open Tep_store
open Tep_tree
open Tep_core
open Tep_wire
module Server = Tep_server.Server
module Client = Tep_client.Client

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let err = function
  | Error e -> e
  | Ok _ -> Alcotest.fail "expected an error"

let make_env () =
  let drbg = Tep_crypto.Drbg.create ~seed:"proof-rpc" in
  let ca = Tep_crypto.Pki.create_ca ~bits:512 ~name:"CA" drbg in
  let directory =
    Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
  in
  let alice = Participant.create ~bits:512 ~ca ~name:"alice" drbg in
  Participant.Directory.register directory alice;
  let db = Database.create ~name:"svc" in
  ignore
    (Database.create_table db ~name:"stock" (Schema.all_int [ "sku"; "qty" ]));
  let engine = Engine.create ~directory db in
  (engine, directory, alice)

let make_server engine alice =
  Server.create
    ~drbg:(Tep_crypto.Drbg.create ~seed:"server")
    ~participants:[ ("alice", alice) ]
    engine

let make_client server =
  Client.loopback ~drbg:(Tep_crypto.Drbg.create ~seed:"client") server

(* The first table name of the form tN that the stable hash routes to
   shard [k]. *)
let table_for_shard ~shards k =
  let rec go i =
    let name = Printf.sprintf "t%d" i in
    if Shards.shard_of_table ~shards name = k then name else go (i + 1)
  in
  go 0

let check_ok engine directory c (p : Client.proofs) =
  let trusted_root = ok (Client.root_hash c) in
  let report =
    ok
      (Client.check_proofs ~algo:(Engine.algo engine) ~directory ~trusted_root p)
  in
  Alcotest.(check bool) "proof report clean" true (Verifier.ok report);
  report

(* ------------------------------------------------------------------ *)
(* Happy path, single shard                                            *)
(* ------------------------------------------------------------------ *)

let test_prove_single_cell () =
  let engine, directory, alice = make_env () in
  let server = make_server engine alice in
  let c = make_client server in
  ok (Client.authenticate c alice);
  let row, _ = ok (Client.insert c ~table:"stock" [| Value.Int 1; Value.Int 10 |]) in
  ignore (ok (Client.insert c ~table:"stock" [| Value.Int 2; Value.Int 20 |]));
  let p = ok (Client.prove c ~table:"stock" ~row ~col:1 ()) in
  Alcotest.(check int) "single shard index" 0 p.Client.pf_shard;
  Alcotest.(check int) "one shard root" 1 (List.length p.Client.pf_shard_roots);
  Alcotest.(check int) "one proven leaf" 1 (List.length p.Client.pf_items);
  let report = check_ok engine directory c p in
  Alcotest.(check bool) "records checked" true
    (report.Verifier.records_checked > 0);
  Alcotest.(check bool) "signatures checked" true
    (report.Verifier.signatures_checked > 0);
  (* the proven leaf is the actual cell value *)
  let it = List.hd p.Client.pf_items in
  Alcotest.(check bool) "leaf value is the cell" true
    (it.Client.pf_proof.Proof.leaf_value = Value.Int 10);
  Client.close c

let test_prove_whole_row () =
  let engine, directory, alice = make_env () in
  let server = make_server engine alice in
  let c = make_client server in
  ok (Client.authenticate c alice);
  let row, _ = ok (Client.insert c ~table:"stock" [| Value.Int 7; Value.Int 70 |]) in
  let p = ok (Client.prove c ~table:"stock" ~row ()) in
  (* no [col]: one proof per cell of the row *)
  Alcotest.(check int) "one leaf per cell" 2 (List.length p.Client.pf_items);
  ignore (check_ok engine directory c p);
  Client.close c

let test_prove_errors () =
  let engine, _, alice = make_env () in
  let server = make_server engine alice in
  let c = make_client server in
  ok (Client.authenticate c alice);
  (match Client.prove c ~table:"nope" ~row:0 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown table must fail");
  (match Client.prove c ~table:"stock" ~row:42 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown row must fail");
  Client.close c

(* Proofs must be strictly smaller than shipping the whole database
   subtree — the point of O(log n) remote verification. *)
let test_proof_smaller_than_delivery () =
  let engine, directory, alice = make_env () in
  let server = make_server engine alice in
  let c = make_client server in
  ok (Client.authenticate c alice);
  let row = ref 0 in
  for i = 1 to 32 do
    let r, _ =
      ok (Client.insert c ~table:"stock" [| Value.Int i; Value.Int (i * 10) |])
    in
    if i = 1 then row := r
  done;
  let p = ok (Client.prove c ~table:"stock" ~row:!row ~col:0 ()) in
  ignore (check_ok engine directory c p);
  let proof_bytes =
    List.fold_left
      (fun n it -> n + String.length it.Client.pf_encoded)
      0 p.Client.pf_items
  in
  let full, _ = ok (Engine.deliver engine (Engine.root_oid engine)) in
  let full_bytes = String.length (Subtree.to_string full) in
  Alcotest.(check bool)
    (Printf.sprintf "proof %dB < full delivery %dB" proof_bytes full_bytes)
    true
    (proof_bytes < full_bytes);
  Client.close c

(* ------------------------------------------------------------------ *)
(* Cross-shard chaining                                                 *)
(* ------------------------------------------------------------------ *)

let make_sharded_env () =
  let drbg = Tep_crypto.Drbg.create ~seed:"proof-shards" in
  let ca = Tep_crypto.Pki.create_ca ~bits:512 ~name:"CA" drbg in
  let directory =
    Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
  in
  let alice = Participant.create ~bits:512 ~ca ~name:"alice" drbg in
  Participant.Directory.register directory alice;
  let t0 = table_for_shard ~shards:2 0 and t1 = table_for_shard ~shards:2 1 in
  let make_engine table =
    let db = Database.create ~name:"sharddb" in
    let eng = Engine.create ~directory db in
    (match Engine.create_table eng alice ~name:table (Schema.all_int [ "a"; "b" ]) with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e);
    eng
  in
  let e0 = make_engine t0 and e1 = make_engine t1 in
  let coord_file = Filename.temp_file "tep_proof_coord" ".wal" in
  let coord = Wal.open_file coord_file in
  let server =
    Server.create
      ~drbg:(Tep_crypto.Drbg.create ~seed:"server")
      ~participants:[ ("alice", alice) ]
      ~shards:[ (e1, None) ] ~coord e0
  in
  (server, directory, alice, e0, e1, t0, t1)

let test_prove_cross_shard () =
  let server, directory, alice, e0, e1, t0, t1 = make_sharded_env () in
  let c = make_client server in
  ok (Client.authenticate c alice);
  let r0, _ = ok (Client.insert c ~table:t0 [| Value.Int 1; Value.Int 10 |]) in
  let r1, _ = ok (Client.insert c ~table:t1 [| Value.Int 2; Value.Int 20 |]) in
  let trusted_root = ok (Client.root_hash c) in
  (* the published root really is the root-of-roots over both shards *)
  Alcotest.(check string) "published root = root-of-roots" trusted_root
    (Merkle.root_of_roots (Engine.algo e0)
       [ Engine.root_hash e0; Engine.root_hash e1 ]);
  (* prove a row on each shard; each answer carries BOTH shard roots
     and chains through the shard layer to the same pinned root *)
  List.iter
    (fun (table, row, shard, eng) ->
      let p = ok (Client.prove c ~table ~row ~col:0 ()) in
      Alcotest.(check int)
        (Printf.sprintf "%s owned by shard %d" table shard)
        shard p.Client.pf_shard;
      Alcotest.(check int) "both shard roots shipped" 2
        (List.length p.Client.pf_shard_roots);
      Alcotest.(check string) "owning shard root matches its engine"
        (Engine.root_hash eng)
        (List.nth p.Client.pf_shard_roots shard);
      let report =
        ok
          (Client.check_proofs ~algo:(Engine.algo e0) ~directory ~trusted_root p)
      in
      Alcotest.(check bool) "cross-shard proof clean" true (Verifier.ok report))
    [ (t0, r0, 0, e0); (t1, r1, 1, e1) ];
  Client.close c

(* A write to shard 1 changes the root-of-roots: proofs fetched before
   the write no longer chain to a freshly pinned root (stale shard
   roots), while freshly fetched proofs do — on BOTH shards. *)
let test_cross_shard_root_moves () =
  let server, directory, alice, e0, _, t0, t1 = make_sharded_env () in
  let c = make_client server in
  ok (Client.authenticate c alice);
  let r0, _ = ok (Client.insert c ~table:t0 [| Value.Int 1; Value.Int 10 |]) in
  let old_p = ok (Client.prove c ~table:t0 ~row:r0 ~col:0 ()) in
  ignore (ok (Client.insert c ~table:t1 [| Value.Int 2; Value.Int 20 |]));
  let new_root = ok (Client.root_hash c) in
  (match
     Client.check_proofs ~algo:(Engine.algo e0) ~directory
       ~trusted_root:new_root old_p
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stale shard roots must not recombine");
  let fresh = ok (Client.prove c ~table:t0 ~row:r0 ~col:0 ()) in
  let report =
    ok
      (Client.check_proofs ~algo:(Engine.algo e0) ~directory
         ~trusted_root:new_root fresh)
  in
  Alcotest.(check bool) "fresh proof chains to the new root" true
    (Verifier.ok report);
  Client.close c

(* ------------------------------------------------------------------ *)
(* Proof cache: replay on repeat, invalidation on write                 *)
(* ------------------------------------------------------------------ *)

let proof_counters c =
  match ok (Client.shard_stats c) with
  | [ s ] ->
      ( s.Message.ss_proofs_served,
        s.Message.ss_proof_cache_hits,
        s.Message.ss_proof_cache_misses )
  | l -> Alcotest.fail (Printf.sprintf "expected 1 shard, got %d" (List.length l))

let test_proof_cache_hit_and_invalidate () =
  let engine, directory, alice = make_env () in
  let server = make_server engine alice in
  let c = make_client server in
  ok (Client.authenticate c alice);
  let row, _ = ok (Client.insert c ~table:"stock" [| Value.Int 1; Value.Int 10 |]) in
  (* first prove: a cache miss that populates the LRU *)
  ignore (ok (Client.prove c ~table:"stock" ~row ~col:1 ()));
  let served1, hits1, misses1 = proof_counters c in
  Alcotest.(check int) "first proof served" 1 served1;
  Alcotest.(check int) "first proof missed the cache" 1 misses1;
  Alcotest.(check int) "no hits yet" 0 hits1;
  (* second prove of the same cell: replayed from the LRU *)
  let p2 = ok (Client.prove c ~table:"stock" ~row ~col:1 ()) in
  let _, hits2, misses2 = proof_counters c in
  Alcotest.(check int) "replayed from cache" 1 hits2;
  Alcotest.(check int) "no extra miss" misses1 misses2;
  ignore (check_ok engine directory c p2);
  (* a write to the shard invalidates the cached path: the next prove
     is a miss again and chains to the NEW root *)
  ignore (ok (Client.update c ~table:"stock" ~row ~col:1 (Value.Int 99)));
  let p3 = ok (Client.prove c ~table:"stock" ~row ~col:1 ()) in
  let _, hits3, misses3 = proof_counters c in
  Alcotest.(check int) "write invalidated the cached path" (misses2 + 1) misses3;
  Alcotest.(check int) "no stale replay" hits2 hits3;
  let report = check_ok engine directory c p3 in
  Alcotest.(check bool) "post-update proof clean" true (Verifier.ok report);
  Alcotest.(check bool) "proves the NEW value" true
    ((List.hd p3.Client.pf_items).Client.pf_proof.Proof.leaf_value
    = Value.Int 99);
  (* the pre-update proof no longer chains to the fresh root *)
  let new_root = ok (Client.root_hash c) in
  (match
     Client.check_proofs ~algo:(Engine.algo engine) ~directory
       ~trusted_root:new_root p2
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stale proof must not verify against the new root");
  Client.close c

(* ------------------------------------------------------------------ *)
(* Tamper matrix: every flipped byte in the chain is caught             *)
(* ------------------------------------------------------------------ *)

let bump s =
  if s = "" then "x"
  else
    String.mapi
      (fun i ch -> if i = 0 then Char.chr (Char.code ch lxor 1) else ch)
      s

let test_tamper_matrix () =
  let engine, directory, alice = make_env () in
  let server = make_server engine alice in
  let c = make_client server in
  ok (Client.authenticate c alice);
  let row, _ = ok (Client.insert c ~table:"stock" [| Value.Int 1; Value.Int 10 |]) in
  ignore (ok (Client.insert c ~table:"stock" [| Value.Int 2; Value.Int 20 |]));
  let trusted_root = ok (Client.root_hash c) in
  let p = ok (Client.prove c ~table:"stock" ~row ~col:1 ()) in
  let check q =
    Client.check_proofs ~algo:(Engine.algo engine) ~directory ~trusted_root q
  in
  (* baseline sanity: untampered answer verifies *)
  Alcotest.(check bool) "baseline verifies" true
    (match check p with Ok r -> Verifier.ok r | Error _ -> false);
  let it = List.hd p.Client.pf_items in
  let with_proof pf = { p with Client.pf_items = [ { it with Client.pf_proof = pf } ] } in
  let pf = it.Client.pf_proof in
  (* 1. flipped leaf value: the leaf hash no longer matches the parent *)
  let tampered_leaf = with_proof { pf with Proof.leaf_value = Value.Int 999 } in
  ignore (err (check tampered_leaf));
  (* 2. flipped sibling hash in the first path step *)
  let step = List.hd pf.Proof.path in
  let step' =
    {
      step with
      Proof.children =
        List.map (fun (o, h) -> (o, bump h)) step.Proof.children;
    }
  in
  let tampered_sibling =
    with_proof { pf with Proof.path = step' :: List.tl pf.Proof.path }
  in
  ignore (err (check tampered_sibling));
  (* 3. flipped shard root: the shard layer no longer recombines *)
  let tampered_root =
    { p with Client.pf_shard_roots = List.map bump p.Client.pf_shard_roots }
  in
  ignore (err (check tampered_root));
  (* 4. out-of-range shard index *)
  ignore (err (check { p with Client.pf_shard = 7 }));
  (* 5. tampered provenance records: hash chains hold, but the signed
     checksum chain trips — reported as violations, same exit path *)
  let tampered_records =
    {
      p with
      Client.pf_items =
        [
          {
            it with
            Client.pf_records =
              List.map
                (fun r -> { r with Record.checksum = bump r.Record.checksum })
                it.Client.pf_records;
          };
        ];
    }
  in
  (match check tampered_records with
  | Ok r ->
      Alcotest.(check bool) "record tampering reported" false (Verifier.ok r)
  | Error _ -> ());
  Client.close c

(* ------------------------------------------------------------------ *)
(* Sampled audit: determinism and the detection bound                   *)
(* ------------------------------------------------------------------ *)

let test_audit_sample_deterministic () =
  let engine, _, alice = make_env () in
  let server = make_server engine alice in
  let c = make_client server in
  ok (Client.authenticate c alice);
  for i = 1 to 8 do
    ignore
      (ok (Client.insert c ~table:"stock" [| Value.Int i; Value.Int (i * 10) |]))
  done;
  let r1, s1, n1 = ok (Client.audit_sample c ~seed:"sweep" ~alpha_ppm:400_000) in
  let r2, s2, n2 = ok (Client.audit_sample c ~seed:"sweep" ~alpha_ppm:400_000) in
  Alcotest.(check int) "same seed, same sample size" s1 s2;
  Alcotest.(check int) "same population" n1 n2;
  Alcotest.(check string) "same seed, same report"
    (Message.render_report r1) (Message.render_report r2);
  Alcotest.(check bool) "sample within population" true (s1 <= n1 && s1 >= 0);
  Alcotest.(check bool) "population counted" true (n1 > 0);
  Alcotest.(check bool) "clean history, clean sample" true (Message.report_ok r1);
  (* a 40% rate over this population must actually be a partial sweep
     for at least one of a handful of seeds (the DRBG is seeded, so
     this is a fixed, replayable outcome — not a flaky coin flip) *)
  let sizes =
    List.map
      (fun seed ->
        let _, s, _ = ok (Client.audit_sample c ~seed ~alpha_ppm:400_000) in
        s)
      [ "a"; "b"; "c"; "d"; "e"; "f" ]
  in
  Alcotest.(check bool) "partial sweep at alpha=0.4" true
    (List.exists (fun s -> s < n1) (s1 :: sizes));
  Client.close c

let test_audit_sample_full_alpha () =
  let engine, _, alice = make_env () in
  let server = make_server engine alice in
  let c = make_client server in
  ok (Client.authenticate c alice);
  ignore (ok (Client.insert c ~table:"stock" [| Value.Int 1; Value.Int 10 |]));
  ignore (ok (Client.insert c ~table:"stock" [| Value.Int 2; Value.Int 20 |]));
  let report, sampled, population =
    ok (Client.audit_sample c ~seed:"all" ~alpha_ppm:1_000_000)
  in
  Alcotest.(check int) "alpha=1 samples everything" population sampled;
  Alcotest.(check bool) "clean" true (Message.report_ok report);
  (* invalid alpha is rejected, not clamped *)
  (match Client.audit_sample c ~seed:"x" ~alpha_ppm:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "alpha=0 must be rejected");
  (match Client.audit_sample c ~seed:"x" ~alpha_ppm:1_000_001 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "alpha>1 must be rejected");
  Client.close c

let test_audit_sample_detects_tamper () =
  let engine, _, alice = make_env () in
  let server = make_server engine alice in
  let c = make_client server in
  ok (Client.authenticate c alice);
  ignore (ok (Client.insert c ~table:"stock" [| Value.Int 1; Value.Int 10 |]));
  ignore (ok (Client.insert c ~table:"stock" [| Value.Int 2; Value.Int 20 |]));
  (* mutate a cell behind the engine's back, like `provdb tamper` *)
  let forest = Engine.forest engine in
  let cell =
    match
      List.concat_map (fun r -> Forest.children forest r) (Forest.roots forest)
      |> List.concat_map (fun t -> Forest.children forest t)
      |> List.concat_map (fun r -> Forest.children forest r)
    with
    | x :: _ -> x
    | [] -> Alcotest.fail "no cells"
  in
  ignore (Forest.update forest cell (Value.Text "TAMPERED"));
  (* alpha = 1: the tampered object is certainly in the sample *)
  let report, sampled, population =
    ok (Client.audit_sample c ~seed:"detect" ~alpha_ppm:1_000_000)
  in
  Alcotest.(check int) "full sweep" population sampled;
  Alcotest.(check bool) "tampering detected by the sampled audit" false
    (Message.report_ok report);
  (* the detection bound (1-alpha)^k is monotone in alpha: a full
     sweep has bound 0 for any k >= 1 *)
  Alcotest.(check (float 1e-9)) "bound at alpha=1" 0. ((1. -. 1.) ** 1.);
  Client.close c

let () =
  Alcotest.run "proof-rpc"
    [
      ( "prove",
        [
          Alcotest.test_case "single cell" `Quick test_prove_single_cell;
          Alcotest.test_case "whole row" `Quick test_prove_whole_row;
          Alcotest.test_case "errors" `Quick test_prove_errors;
          Alcotest.test_case "smaller than delivery" `Quick
            test_proof_smaller_than_delivery;
        ] );
      ( "cross-shard",
        [
          Alcotest.test_case "chains to root-of-roots" `Quick
            test_prove_cross_shard;
          Alcotest.test_case "root moves on remote write" `Quick
            test_cross_shard_root_moves;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit, then invalidate on write" `Quick
            test_proof_cache_hit_and_invalidate;
        ] );
      ( "tamper",
        [ Alcotest.test_case "tamper matrix" `Quick test_tamper_matrix ] );
      ( "sampled-audit",
        [
          Alcotest.test_case "deterministic" `Quick
            test_audit_sample_deterministic;
          Alcotest.test_case "alpha=1 sweeps all" `Quick
            test_audit_sample_full_alpha;
          Alcotest.test_case "detects tampering" `Quick
            test_audit_sample_detects_tamper;
        ] );
    ]
