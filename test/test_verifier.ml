(* Recipient-side verification: honest histories pass; every R1-R8
   attack from the threat model is detected.  Includes qcheck
   properties over random histories. *)
open Tep_store
open Tep_tree
open Tep_core

let ok = function Ok v -> v | Error e -> Alcotest.fail e

type fixture = {
  eng : Engine.t;
  alice : Participant.t;
  bob : Participant.t;
  eve : Participant.t; (* insider attacker with valid credentials *)
  dir : Participant.Directory.t;
}

let setup () =
  let drbg = Tep_crypto.Drbg.create ~seed:"test-verifier" in
  let ca = Tep_crypto.Pki.create_ca ~name:"CA" drbg in
  let dir = Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca) in
  let mk name =
    let p = Participant.create ~ca ~name drbg in
    Participant.Directory.register dir p;
    p
  in
  let alice = mk "alice" and bob = mk "bob" and eve = mk "eve" in
  let db = Database.create ~name:"vdb" in
  let t = ok (Database.create_table db ~name:"t" (Schema.all_int [ "a"; "b" ])) in
  for i = 0 to 4 do
    ignore (Table.insert t [| Value.Int i; Value.Int (10 * i) |])
  done;
  let eng = Engine.create ~directory:dir db in
  { eng; alice; bob; eve; dir }

(* a history with several participants and ops, delivering the root *)
let history f =
  ok (Engine.update_cell f.eng f.alice ~table:"t" ~row:0 ~col:0 (Value.Int 100));
  ok (Engine.update_cell f.eng f.bob ~table:"t" ~row:1 ~col:1 (Value.Int 200));
  ok (Engine.update_cell f.eng f.alice ~table:"t" ~row:0 ~col:0 (Value.Int 300));
  ignore (ok (Engine.insert_row f.eng f.bob ~table:"t" [| Value.Int 9; Value.Int 9 |]));
  ok (Engine.delete_row f.eng f.alice ~table:"t" 2)

let deliver_root f = ok (Engine.deliver f.eng (Engine.root_oid f.eng))

let verify f data records =
  Verifier.verify ~algo:(Engine.algo f.eng) ~directory:f.dir ~data records

let has_violation report pred = List.exists pred report.Verifier.violations

let test_honest_history_verifies () =
  let f = setup () in
  history f;
  let data, records = deliver_root f in
  let report = verify f data records in
  Alcotest.(check bool) "ok" true (Verifier.ok report);
  Alcotest.(check bool) "checked signatures" true
    (report.Verifier.signatures_checked > 0);
  (* every object's provenance verifies too *)
  let cell = Option.get (Tree_view.cell_oid (Engine.mapping f.eng) "t" 0 0) in
  Alcotest.(check bool) "cell ok" true (Verifier.ok (ok (Engine.verify_object f.eng cell)))

(* R1: modifying another participant's record contents. *)
let test_r1_modify_contents () =
  let f = setup () in
  history f;
  let data, records = deliver_root f in
  let tampered = Tamper.modify_output_hash ~idx:1 records in
  let report = verify f data tampered in
  Alcotest.(check bool) "detected" false (Verifier.ok report);
  Alcotest.(check bool) "as signature failure" true
    (has_violation report (function Verifier.Bad_signature _ -> true | _ -> false))

(* R1 insider: attacker alters a record and re-signs with her own key. *)
let test_r1_resign_as_attacker () =
  let f = setup () in
  history f;
  let data, records = deliver_root f in
  let tampered = Tamper.resign_as ~idx:1 ~attacker:f.eve records in
  let report = verify f data tampered in
  Alcotest.(check bool) "detected" false (Verifier.ok report);
  (* her signature is valid, so detection comes from broken linkage *)
  Alcotest.(check bool) "as broken link" true
    (has_violation report (function
      | Verifier.Broken_link _ | Verifier.Object_mismatch _ -> true
      | _ -> false))

(* R2: removing records. *)
let test_r2_remove_record () =
  let f = setup () in
  history f;
  let data, records = deliver_root f in
  (* remove a middle record of the root chain (root has 5 records) *)
  let root_idx =
    List.mapi (fun i r -> (i, r)) records
    |> List.filter (fun (_, r) ->
           Oid.equal r.Record.output_oid (Engine.root_oid f.eng))
    |> fun l -> fst (List.nth l (List.length l / 2))
  in
  let report = verify f data (Tamper.remove ~idx:root_idx records) in
  Alcotest.(check bool) "detected" false (Verifier.ok report)

(* R3: inserting a forged record into the middle of a chain. *)
let test_r3_insert_record () =
  let f = setup () in
  history f;
  let data, records = deliver_root f in
  let root_first =
    List.mapi (fun i r -> (i, r)) records
    |> List.find (fun (_, r) ->
           Oid.equal r.Record.output_oid (Engine.root_oid f.eng))
    |> fst
  in
  let forged = ok (Tamper.insert_forged ~after:root_first ~attacker:f.eve records) in
  let report = verify f data forged in
  Alcotest.(check bool) "detected" false (Verifier.ok report);
  Alcotest.(check bool) "duplicate seq or broken link" true
    (has_violation report (function
      | Verifier.Duplicate_seq _ | Verifier.Broken_link _
      | Verifier.Object_mismatch _ ->
          true
      | _ -> false))

(* R4: modifying data without submitting provenance. *)
let test_r4_modify_data () =
  let f = setup () in
  history f;
  let data, records = deliver_root f in
  let report = verify f (Tamper.tamper_data_value data) records in
  Alcotest.(check bool) "detected" false (Verifier.ok report);
  Alcotest.(check bool) "as object mismatch" true
    (has_violation report (function Verifier.Object_mismatch _ -> true | _ -> false))

(* R5: attributing P to a different data object. *)
let test_r5_reassign_provenance () =
  let f = setup () in
  history f;
  let _, records = deliver_root f in
  (* same provenance, different object (same oid, different content) *)
  let data, _ = deliver_root f in
  let other = Tamper.reassign_provenance data in
  let report = verify f other records in
  Alcotest.(check bool) "detected" false (Verifier.ok report)

(* R6: colluders cannot insert a non-colluder's record between them. *)
let test_r6_collusion_insert () =
  let f = setup () in
  history f;
  let data, records = deliver_root f in
  (* eve forges a record claiming bob performed an extra operation *)
  let root_first =
    List.mapi (fun i r -> (i, r)) records
    |> List.find (fun (_, r) ->
           Oid.equal r.Record.output_oid (Engine.root_oid f.eng))
    |> fst
  in
  let forged = ok (Tamper.insert_forged ~after:root_first ~attacker:f.eve records) in
  (* ... and reattributes it to bob (non-colluder) *)
  let forged_as_bob =
    Tamper.reattribute ~idx:(root_first + 1) ~to_:"bob" forged
  in
  let report = verify f data forged_as_bob in
  Alcotest.(check bool) "detected" false (Verifier.ok report);
  Alcotest.(check bool) "signature failure present" true
    (has_violation report (function Verifier.Bad_signature _ -> true | _ -> false))

(* R7: colluders cannot remove a non-colluder's records between them
   when a successor exists. *)
let test_r7_collusion_remove () =
  let f = setup () in
  (* alice(seq0) bob(seq1) alice(seq2) alice(seq3) on one cell *)
  ok (Engine.update_cell f.eng f.alice ~table:"t" ~row:3 ~col:0 (Value.Int 1));
  ok (Engine.update_cell f.eng f.bob ~table:"t" ~row:3 ~col:0 (Value.Int 2));
  ok (Engine.update_cell f.eng f.alice ~table:"t" ~row:3 ~col:0 (Value.Int 3));
  ok (Engine.update_cell f.eng f.alice ~table:"t" ~row:3 ~col:0 (Value.Int 4));
  let cell = Option.get (Tree_view.cell_oid (Engine.mapping f.eng) "t" 3 0) in
  let data, records = ok (Engine.deliver f.eng cell) in
  Alcotest.(check int) "4 records" 4 (List.length records);
  (* colluders: the two alices around bob; they bridge 0 -> 2 and
     re-sign record 2, removing bob's record 1 *)
  let resign name = if name = "alice" then Some f.alice else None in
  let colluded = ok (Tamper.collude_remove_span ~first:0 ~last:2 ~resign records) in
  let report =
    Verifier.verify ~algo:(Engine.algo f.eng) ~directory:f.dir ~data colluded
  in
  (* detected because alice's seq-3 record still cites the old chain *)
  Alcotest.(check bool) "detected" false (Verifier.ok report)

(* R8: non-repudiation — reattributing a record to someone else fails
   because the signature identifies the true signer. *)
let test_r8_non_repudiation () =
  let f = setup () in
  history f;
  let data, records = deliver_root f in
  let swap (r : Record.t) = if r.Record.participant = "alice" then "bob" else "alice" in
  let idx = ref (-1) in
  List.iteri (fun i (_ : Record.t) -> if !idx = -1 then idx := i) records;
  let tampered =
    List.mapi
      (fun i r ->
        if i = !idx then { r with Record.participant = swap r } else r)
      records
  in
  let report = verify f data tampered in
  Alcotest.(check bool) "detected" false (Verifier.ok report)

let test_empty_provenance () =
  let f = setup () in
  let data, _ = deliver_root f in
  let report = verify f data [] in
  Alcotest.(check bool) "no provenance flagged" true
    (has_violation report (function Verifier.No_provenance _ -> true | _ -> false))

let test_verify_records_only () =
  let f = setup () in
  history f;
  let _, records = deliver_root f in
  let report =
    Verifier.verify_records ~algo:(Engine.algo f.eng) ~directory:f.dir records
  in
  Alcotest.(check bool) "audit ok" true (Verifier.ok report)

(* Parallel verification must be indistinguishable from sequential:
   same report value and same rendered text, for clean and tampered
   histories alike, at every pool size. *)
let test_parallel_determinism () =
  let f = setup () in
  history f;
  let data, records = deliver_root f in
  let tampered = Tamper.modify_output_hash ~idx:1 records in
  let render r = Format.asprintf "%a" Verifier.pp_report r in
  let algo = Engine.algo f.eng in
  let seq_data = verify f data records in
  let seq_clean = Verifier.verify_records ~algo ~directory:f.dir records in
  let seq_bad = Verifier.verify_records ~algo ~directory:f.dir tampered in
  Alcotest.(check bool) "tampered baseline fails" false (Verifier.ok seq_bad);
  List.iter
    (fun domains ->
      let pool = Tep_parallel.Pool.create ~domains () in
      let name fmt = Printf.sprintf fmt domains in
      let par_data =
        Verifier.verify ~pool ~algo ~directory:f.dir ~data records
      in
      let par_clean = Verifier.verify_records ~pool ~algo ~directory:f.dir records in
      let par_bad = Verifier.verify_records ~pool ~algo ~directory:f.dir tampered in
      Alcotest.(check bool) (name "verify equal @%d") true (par_data = seq_data);
      Alcotest.(check bool) (name "clean equal @%d") true (par_clean = seq_clean);
      Alcotest.(check bool) (name "tampered equal @%d") true (par_bad = seq_bad);
      Alcotest.(check string)
        (name "clean render @%d") (render seq_clean) (render par_clean);
      Alcotest.(check string)
        (name "tampered render @%d") (render seq_bad) (render par_bad);
      Alcotest.(check bool) (name "Bad_signature kept @%d") true
        (List.exists
           (function Verifier.Bad_signature _ -> true | _ -> false)
           par_bad.Verifier.violations);
      Tep_parallel.Pool.shutdown pool)
    [ 1; 2; 4 ]

let test_violation_strings () =
  (* every violation constructor renders *)
  let oid = Oid.of_int 1 in
  List.iter
    (fun v ->
      Alcotest.(check bool) "non-empty" true
        (String.length (Verifier.violation_to_string v) > 0))
    [
      Verifier.No_provenance oid;
      Verifier.Object_mismatch { oid; expected = "a"; actual = "b" };
      Verifier.Bad_signature { oid; seq = 1; reason = "r" };
      Verifier.Duplicate_seq { oid; seq = 1 };
      Verifier.Seq_gap { oid; after_seq = 1; found_seq = 3 };
      Verifier.First_record_invalid { oid; reason = "r" };
      Verifier.Broken_link { oid; seq = 1; reason = "r" };
      Verifier.Dangling_prev { oid; seq = 1; missing = "m" };
      Verifier.Malformed { oid; seq = 1; reason = "r" };
    ]

(* --- properties over random histories --- *)

type op_choice = OUpd of int * int * int | OIns | ODel of int

let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 1 12)
      (oneof
         [
           map3 (fun r c v -> OUpd (r, c, v)) (int_range 0 4) (int_range 0 1)
             (int_range 0 1000);
           return OIns;
           map (fun r -> ODel r) (int_range 0 4);
         ]))

let run_ops f ops =
  List.iter
    (fun op ->
      let p = f.alice in
      match op with
      | OUpd (r, c, v) ->
          ignore (Engine.update_cell f.eng p ~table:"t" ~row:r ~col:c (Value.Int v))
      | OIns -> ignore (Engine.insert_row f.eng p ~table:"t" [| Value.Int 0; Value.Int 0 |])
      | ODel r -> ignore (Engine.delete_row f.eng p ~table:"t" r))
    ops

let prop_honest_histories_verify =
  QCheck2.Test.make ~name:"every honest history verifies" ~count:25 gen_ops
    (fun ops ->
      let f = setup () in
      run_ops f ops;
      let data, records = deliver_root f in
      Verifier.ok (verify f data records))

let prop_single_tamper_detected =
  QCheck2.Test.make ~name:"any single record hash-tamper is detected" ~count:25
    QCheck2.Gen.(pair gen_ops (int_range 0 1000))
    (fun (ops, pick) ->
      let f = setup () in
      run_ops f ops;
      let data, records = deliver_root f in
      QCheck2.assume (records <> []);
      let idx = pick mod List.length records in
      let tampered = Tamper.modify_output_hash ~idx records in
      not (Verifier.ok (verify f data tampered)))

let () =
  Alcotest.run "verifier"
    [
      ( "honest",
        [
          Alcotest.test_case "honest history" `Quick
            test_honest_history_verifies;
          Alcotest.test_case "records-only audit" `Quick
            test_verify_records_only;
          Alcotest.test_case "empty provenance" `Quick test_empty_provenance;
          Alcotest.test_case "parallel determinism" `Quick
            test_parallel_determinism;
          Alcotest.test_case "violation rendering" `Quick
            test_violation_strings;
        ] );
      ( "attacks",
        [
          Alcotest.test_case "R1 modify contents" `Quick test_r1_modify_contents;
          Alcotest.test_case "R1 insider resign" `Quick
            test_r1_resign_as_attacker;
          Alcotest.test_case "R2 remove record" `Quick test_r2_remove_record;
          Alcotest.test_case "R3 insert record" `Quick test_r3_insert_record;
          Alcotest.test_case "R4 modify data" `Quick test_r4_modify_data;
          Alcotest.test_case "R5 reassign provenance" `Quick
            test_r5_reassign_provenance;
          Alcotest.test_case "R6 collusion insert" `Quick
            test_r6_collusion_insert;
          Alcotest.test_case "R7 collusion remove" `Quick
            test_r7_collusion_remove;
          Alcotest.test_case "R8 non-repudiation" `Quick
            test_r8_non_repudiation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_honest_histories_verify; prop_single_tamper_detected ] );
    ]
