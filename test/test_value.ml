(* Typed values: ordering, typing, codec. *)
open Tep_store

let value = Alcotest.testable Value.pp Value.equal

let all_samples =
  [
    Value.Null;
    Value.Bool false;
    Value.Bool true;
    Value.Int 0;
    Value.Int (-42);
    Value.Int max_int;
    Value.Int (min_int + 1);
    Value.Float 0.;
    Value.Float 3.14159;
    Value.Float (-1e300);
    Value.Float infinity;
    Value.Text "";
    Value.Text "hello";
    Value.Text "\x00\xff binary-ish";
    Value.Blob "";
    Value.Blob "\x00\x01\x02";
  ]

let test_type_of () =
  Alcotest.(check bool) "null" true (Value.type_of Value.Null = None);
  Alcotest.(check bool) "int" true (Value.type_of (Value.Int 3) = Some Value.TInt);
  Alcotest.(check bool)
    "text" true
    (Value.type_of (Value.Text "x") = Some Value.TText)

let test_conforms () =
  Alcotest.(check bool) "null conforms to int" true (Value.conforms Value.TInt Value.Null);
  Alcotest.(check bool) "int conforms" true (Value.conforms Value.TInt (Value.Int 1));
  Alcotest.(check bool) "text not int" false (Value.conforms Value.TInt (Value.Text "1"))

let test_compare_total_order () =
  (* Null < Bool < Int < Float < Text < Blob; within type natural. *)
  Alcotest.(check bool) "null first" true (Value.compare Value.Null (Value.Bool false) < 0);
  Alcotest.(check bool) "bool < int" true (Value.compare (Value.Bool true) (Value.Int (-5)) < 0);
  Alcotest.(check bool) "int order" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  Alcotest.(check bool) "text order" true (Value.compare (Value.Text "a") (Value.Text "b") < 0);
  (* reflexive / antisymmetric spot checks *)
  List.iter
    (fun v -> Alcotest.(check int) "self" 0 (Value.compare v v))
    all_samples

let test_codec_roundtrip () =
  List.iter
    (fun v ->
      let enc = Value.encoded v in
      let v', off = Value.decode enc 0 in
      Alcotest.check value (Value.to_string v) v v';
      Alcotest.(check int) "consumed all" (String.length enc) off)
    all_samples

let test_codec_stream () =
  (* several values concatenated decode in sequence *)
  let buf = Buffer.create 64 in
  List.iter (Value.encode buf) all_samples;
  let s = Buffer.contents buf in
  let off = ref 0 in
  List.iter
    (fun v ->
      let v', o = Value.decode s !off in
      off := o;
      Alcotest.check value "stream" v v')
    all_samples;
  Alcotest.(check int) "end" (String.length s) !off

let test_decode_errors () =
  (try
     ignore (Value.decode "" 0);
     Alcotest.fail "empty should fail"
   with Failure _ -> ());
  (try
     ignore (Value.decode "\x99" 0);
     Alcotest.fail "bad tag should fail"
   with Failure _ -> ());
  try
    ignore (Value.decode "\x05\xff" 0);
    Alcotest.fail "truncated string should fail"
  with Failure _ -> ()

let test_varint () =
  let buf = Buffer.create 16 in
  List.iter (Value.add_varint buf) [ 0; 1; 127; 128; 300; max_int ];
  let s = Buffer.contents buf in
  let off = ref 0 in
  List.iter
    (fun n ->
      let n', o = Value.read_varint s !off in
      off := o;
      Alcotest.(check int) "varint" n n')
    [ 0; 1; 127; 128; 300; max_int ]

let test_to_string () =
  Alcotest.(check string) "null" "NULL" (Value.to_string Value.Null);
  Alcotest.(check string) "int" "42" (Value.to_string (Value.Int 42));
  Alcotest.(check string) "blob hex" "0x0001" (Value.to_string (Value.Blob "\x00\x01"))

let gen_value =
  QCheck2.Gen.(
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) int;
        map (fun f -> Value.Float f) float;
        map (fun s -> Value.Text s) (string_size ~gen:char (int_range 0 50));
        map (fun s -> Value.Blob s) (string_size ~gen:char (int_range 0 50));
      ])

let prop_roundtrip =
  QCheck2.Test.make ~name:"codec roundtrip" ~count:1000 gen_value (fun v ->
      match v with
      | Value.Float f when Float.is_nan f -> true (* NaN <> NaN by compare? Stdlib.compare handles *)
      | _ ->
          let v', _ = Value.decode (Value.encoded v) 0 in
          Value.compare v v' = 0)

let degenerate_float = function
  | Value.Float f -> Float.is_nan f || f = 0. (* -0. = 0. but bits differ *)
  | _ -> false

let prop_injective =
  QCheck2.Test.make ~name:"encoding injective" ~count:1000
    QCheck2.Gen.(pair gen_value gen_value)
    (fun (a, b) ->
      QCheck2.assume (not (degenerate_float a || degenerate_float b));
      if Value.compare a b = 0 then String.equal (Value.encoded a) (Value.encoded b)
      else not (String.equal (Value.encoded a) (Value.encoded b)))

let () =
  Alcotest.run "value"
    [
      ( "unit",
        [
          Alcotest.test_case "type_of" `Quick test_type_of;
          Alcotest.test_case "conforms" `Quick test_conforms;
          Alcotest.test_case "total order" `Quick test_compare_total_order;
          Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "codec stream" `Quick test_codec_stream;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
          Alcotest.test_case "varint" `Quick test_varint;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_injective ]
      );
    ]
