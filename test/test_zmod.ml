(* Modular arithmetic: gcd, modinv, modpow (Montgomery and naive). *)
open Tep_bignum

let nat = Alcotest.testable (Fmt.of_to_string Nat.to_decimal) Nat.equal

let n = Nat.of_int

let gen_nat bits =
  QCheck2.Gen.(
    let* s = string_size ~gen:char (return ((bits + 7) / 8)) in
    return (Nat.of_bytes_be s))

let test_gcd () =
  Alcotest.check nat "gcd(12,18)" (n 6) (Zmod.gcd (n 12) (n 18));
  Alcotest.check nat "gcd(17,31)" (n 1) (Zmod.gcd (n 17) (n 31));
  Alcotest.check nat "gcd(0,5)" (n 5) (Zmod.gcd (n 0) (n 5));
  Alcotest.check nat "gcd(5,0)" (n 5) (Zmod.gcd (n 5) (n 0))

let test_modinv_known () =
  (match Zmod.modinv (n 3) (n 7) with
  | Some x -> Alcotest.check nat "3^-1 mod 7" (n 5) x
  | None -> Alcotest.fail "expected inverse");
  (match Zmod.modinv (n 6) (n 9) with
  | Some _ -> Alcotest.fail "6 has no inverse mod 9"
  | None -> ());
  Alcotest.check_raises "modulus 1" (Invalid_argument "Zmod.modinv: modulus <= 1")
    (fun () -> ignore (Zmod.modinv (n 3) (n 1)))

let test_modpow_known () =
  Alcotest.check nat "2^10 mod 1000" (n 24) (Zmod.modpow (n 2) (n 10) (n 1000));
  Alcotest.check nat "5^0 mod 7" (n 1) (Zmod.modpow (n 5) (n 0) (n 7));
  Alcotest.check nat "0^5 mod 7" (n 0) (Zmod.modpow (n 0) (n 5) (n 7));
  (* Fermat: a^(p-1) = 1 mod p *)
  let p = Nat.of_decimal "170141183460469231731687303715884105727" in
  Alcotest.check nat "fermat" Nat.one
    (Zmod.modpow (n 123456789) (Nat.sub p Nat.one) p);
  (* even modulus falls back to the naive path *)
  Alcotest.check nat "even modulus" (n 6) (Zmod.modpow (n 6) (n 3) (n 10));
  Alcotest.check_raises "zero modulus"
    (Invalid_argument "Zmod.modpow: zero modulus") (fun () ->
      ignore (Zmod.modpow (n 2) (n 2) Nat.zero))

let test_montgomery_vs_naive () =
  let seed = ref 99 in
  let next () =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed
  in
  for _ = 1 to 50 do
    let b = n (next ()) and e = n (next () land 0xFFFF) in
    let m = n ((next () lor 1) + 2) in
    (* odd, > 2 *)
    let mont = Zmod.Montgomery.create m in
    Alcotest.check nat "mont = mod_mul chain"
      (Zmod.modpow b e m)
      (Zmod.Montgomery.pow mont b e)
  done

(* The windowed ladder must agree with the division-based oracle on
   the edge cases the dispatcher and window extraction handle
   specially: zero base, zero exponent, modulus 1, even moduli. *)
let test_modpow_edges () =
  let check name want b e m =
    Alcotest.check nat name want (Zmod.modpow b e m);
    Alcotest.check nat (name ^ " (naive)") want (Zmod.modpow_naive b e m)
  in
  check "m=1" Nat.zero (n 7) (n 3) Nat.one;
  check "e=0, m=1" Nat.zero (n 7) Nat.zero Nat.one;
  check "b=0" Nat.zero Nat.zero (n 9) (n 11);
  check "b=0, e=0" Nat.one Nat.zero Nat.zero (n 11);
  check "even m" (n 6) (n 6) (n 3) (n 10);
  check "b multiple of m" Nat.zero (n 22) (n 5) (n 11)

(* Exercise every window size (k=1..5): exponent widths on both sides
   of each window_bits threshold, against the binary ladder. *)
let test_window_sizes () =
  let seed = ref 1234 in
  let next () =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed
  in
  let rand_nat bits =
    let limbs = (bits + 29) / 30 in
    let x = ref Nat.zero in
    for _ = 1 to limbs do
      x := Nat.add (Nat.shift_left !x 30) (Nat.of_int (next ()))
    done;
    Nat.rem !x (Nat.shift_left Nat.one bits)
  in
  let m = Nat.add (Nat.shift_left Nat.one 511) (rand_nat 511) in
  let m = if Nat.is_even m then Nat.add m Nat.one else m in
  let ctx = Zmod.Montgomery.create m in
  let b = rand_nat 512 in
  List.iter
    (fun ebits ->
      let e = Nat.add (Nat.shift_left Nat.one (ebits - 1)) (rand_nat (ebits - 1)) in
      Alcotest.check nat
        (Printf.sprintf "windowed = binary at %d-bit exponent" ebits)
        (Zmod.Montgomery.pow_binary ctx b e)
        (Zmod.Montgomery.pow ctx b e))
    [ 2; 24; 25; 80; 81; 240; 241; 768; 769; 2048 ]

let prop_modpow_vs_naive =
  QCheck2.Test.make ~name:"windowed modpow = naive oracle (any modulus)"
    ~count:150
    QCheck2.Gen.(triple (gen_nat 96) (gen_nat 64) (gen_nat 96))
    (fun (b, e, m) ->
      QCheck2.assume (not (Nat.is_zero m));
      Nat.equal (Zmod.modpow b e m) (Zmod.modpow_naive b e m))

let prop_window_vs_binary =
  QCheck2.Test.make ~name:"Montgomery.pow = pow_binary (odd moduli)"
    ~count:60
    QCheck2.Gen.(triple (gen_nat 256) (gen_nat 200) (gen_nat 256))
    (fun (b, e, m) ->
      let m = if Nat.is_even m then Nat.add m Nat.one else m in
      QCheck2.assume (Nat.compare m Nat.two > 0);
      let ctx = Zmod.Montgomery.create m in
      Nat.equal
        (Zmod.Montgomery.pow ctx b e)
        (Zmod.Montgomery.pow_binary ctx b e))

let prop_modinv =
  QCheck2.Test.make ~name:"modinv correct when gcd=1" ~count:200
    QCheck2.Gen.(pair (gen_nat 128) (gen_nat 160))
    (fun (a, m) ->
      QCheck2.assume (Nat.compare m Nat.two > 0);
      match Zmod.modinv a m with
      | Some x -> Nat.is_one (Nat.rem (Nat.mul (Nat.rem a m) x) m)
      | None -> not (Nat.is_one (Zmod.gcd a m)))

let prop_modpow_mul =
  QCheck2.Test.make ~name:"b^(e1+e2) = b^e1 * b^e2 (mod m)" ~count:100
    QCheck2.Gen.(quad (gen_nat 64) (gen_nat 16) (gen_nat 16) (gen_nat 80))
    (fun (b, e1, e2, m) ->
      QCheck2.assume (Nat.compare m Nat.two > 0);
      let lhs = Zmod.modpow b (Nat.add e1 e2) m in
      let rhs = Zmod.mod_mul (Zmod.modpow b e1 m) (Zmod.modpow b e2 m) m in
      Nat.equal lhs rhs)

let prop_gcd_divides =
  QCheck2.Test.make ~name:"gcd divides both" ~count:300
    QCheck2.Gen.(pair (gen_nat 100) (gen_nat 100))
    (fun (a, b) ->
      let g = Zmod.gcd a b in
      if Nat.is_zero g then Nat.is_zero a && Nat.is_zero b
      else Nat.is_zero (Nat.rem a g) && Nat.is_zero (Nat.rem b g))

let () =
  Alcotest.run "zmod"
    [
      ( "unit",
        [
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "modinv" `Quick test_modinv_known;
          Alcotest.test_case "modpow" `Quick test_modpow_known;
          Alcotest.test_case "montgomery vs naive" `Quick
            test_montgomery_vs_naive;
          Alcotest.test_case "modpow edge cases" `Quick test_modpow_edges;
          Alcotest.test_case "window sizes" `Quick test_window_sizes;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_modpow_vs_naive;
            prop_window_vs_binary;
            prop_modinv;
            prop_modpow_mul;
            prop_gcd_divides;
          ] );
    ]
