(* DAG reconstruction from record lists. *)
open Tep_tree
open Tep_core

let mk ?(kind = Record.Update) ?(prevs = []) ~seq ~oid ~checksum () =
  {
    Record.seq_id = seq;
    participant = Printf.sprintf "p%d" (seq mod 3);
    kind;
    inherited = false;
    input_oids = [];
    input_hashes = [];
    output_oid = Oid.of_int oid;
    output_hash = "";
    output_value = None;
    prev_checksums = prevs;
    checksum;
  }

(* the Figure 2 shape: A chain, B chain, C aggregate, D aggregate *)
let figure2_records =
  [
    mk ~kind:Record.Insert ~seq:0 ~oid:1 ~checksum:"C1" ();
    mk ~kind:Record.Insert ~seq:0 ~oid:2 ~checksum:"C2" ();
    mk ~seq:1 ~oid:1 ~checksum:"C3" ~prevs:[ "C1" ] ();
    mk ~seq:1 ~oid:2 ~checksum:"C4" ~prevs:[ "C2" ] ();
    mk ~seq:2 ~oid:1 ~checksum:"C5" ~prevs:[ "C3" ] ();
    mk ~kind:Record.Aggregate ~seq:2 ~oid:3 ~checksum:"C6" ~prevs:[ "C1"; "C4" ] ();
    mk ~kind:Record.Aggregate ~seq:3 ~oid:4 ~checksum:"C7" ~prevs:[ "C5"; "C6" ] ();
  ]

let test_build_figure2 () =
  let dag = Dag.build figure2_records in
  Alcotest.(check int) "7 records" 7 (Dag.size dag);
  Alcotest.(check int) "2 roots (inserts)" 2 (List.length (Dag.roots dag));
  Alcotest.(check int) "1 sink (D)" 1 (List.length (Dag.sinks dag));
  Alcotest.(check bool) "non-linear" false (Dag.is_linear dag);
  Alcotest.(check (list (pair int string))) "no dangling" [] (Dag.dangling dag);
  Alcotest.(check int) "depth: C1->C3->C5->C7" 4 (Dag.depth dag)

let test_topological () =
  let dag = Dag.build figure2_records in
  let order = Dag.topological dag in
  Alcotest.(check int) "all nodes" 7 (List.length order);
  let pos = Hashtbl.create 7 in
  List.iteri (fun i n -> Hashtbl.replace pos n i) order;
  Array.iteri
    (fun i node ->
      List.iter
        (fun p ->
          Alcotest.(check bool) "pred before succ" true
            (Hashtbl.find pos p < Hashtbl.find pos i))
        node.Dag.predecessors)
    (Dag.nodes dag)

let test_linear_chain () =
  let records =
    [
      mk ~kind:Record.Insert ~seq:0 ~oid:1 ~checksum:"a" ();
      mk ~seq:1 ~oid:1 ~checksum:"b" ~prevs:[ "a" ] ();
      mk ~seq:2 ~oid:1 ~checksum:"c" ~prevs:[ "b" ] ();
    ]
  in
  let dag = Dag.build records in
  Alcotest.(check bool) "linear" true (Dag.is_linear dag);
  Alcotest.(check int) "depth" 3 (Dag.depth dag)

let test_dangling () =
  let records = [ mk ~seq:1 ~oid:1 ~checksum:"b" ~prevs:[ "removed" ] () ] in
  let dag = Dag.build records in
  Alcotest.(check int) "one dangling" 1 (List.length (Dag.dangling dag))

let test_records_of_participant () =
  let dag = Dag.build figure2_records in
  let total =
    List.fold_left
      (fun acc p -> acc + List.length (Dag.records_of_participant dag p))
      0 [ "p0"; "p1"; "p2" ]
  in
  Alcotest.(check int) "partitioned" 7 total

let test_empty () =
  let dag = Dag.build [] in
  Alcotest.(check int) "size" 0 (Dag.size dag);
  Alcotest.(check int) "depth" 0 (Dag.depth dag);
  Alcotest.(check (list int)) "topo" [] (Dag.topological dag)

let test_to_dot () =
  let dot = Dag.to_dot (Dag.build figure2_records) in
  let contains sub =
    let n = String.length sub and m = String.length dot in
    let rec go i = i + n <= m && (String.sub dot i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph provenance");
  Alcotest.(check bool) "edges" true (contains "->");
  Alcotest.(check bool) "aggregate label" true (contains "aggregate")

let () =
  Alcotest.run "dag"
    [
      ( "unit",
        [
          Alcotest.test_case "figure2 shape" `Quick test_build_figure2;
          Alcotest.test_case "topological" `Quick test_topological;
          Alcotest.test_case "linear chain" `Quick test_linear_chain;
          Alcotest.test_case "dangling" `Quick test_dangling;
          Alcotest.test_case "records_of_participant" `Quick
            test_records_of_participant;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "to_dot" `Quick test_to_dot;
        ] );
    ]
