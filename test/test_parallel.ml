(* Domain pool: deterministic ordering, exception propagation,
   nesting, and shutdown semantics — across pool sizes (including
   sizes larger than the host's core count, which must still be
   correct, just not faster). *)

open Tep_parallel

exception Boom of int

let test_map_chunked_matches_seq () =
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      List.iter
        (fun n ->
          let input = Array.init n (fun i -> i) in
          let expect = Array.map (fun i -> (i * 7) + 1) input in
          List.iter
            (fun chunk ->
              let got = Pool.map_chunked ?chunk pool (fun i -> (i * 7) + 1) input in
              Alcotest.(check (array int))
                (Printf.sprintf "d=%d n=%d" domains n)
                expect got)
            [ None; Some 1; Some 3; Some 1000 ])
        [ 0; 1; 7; 64; 1000 ];
      Pool.shutdown pool)
    [ 1; 2; 4; 8 ]

let test_map_chunked_ordering () =
  (* Results land at the slot of their input even when chunks finish
     out of order (forced by uneven per-element work). *)
  let pool = Pool.create ~domains:4 () in
  let input = Array.init 200 (fun i -> i) in
  let slow i =
    if i mod 50 = 0 then Unix.sleepf 0.005;
    string_of_int i
  in
  let got = Pool.map_chunked ~chunk:1 pool slow input in
  Array.iteri
    (fun i s -> Alcotest.(check string) "slot" (string_of_int i) s)
    got;
  Pool.shutdown pool

let test_exception_reraised () =
  let pool = Pool.create ~domains:4 () in
  (* Several chunks raise; the lowest-indexed failure wins,
     deterministically. *)
  let f i = if i >= 60 then raise (Boom i) else i in
  (try
     ignore (Pool.map_chunked ~chunk:10 pool f (Array.init 100 (fun i -> i)));
     Alcotest.fail "expected Boom"
   with Boom i ->
     Alcotest.(check int) "lowest failing chunk's exception" 60 i);
  (* The pool survives a failed job. *)
  let got = Pool.map_chunked pool (fun i -> i + 1) [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "pool reusable after failure" [| 2; 3; 4 |] got;
  Pool.shutdown pool

let test_parallel_for () =
  let pool = Pool.create ~domains:4 () in
  let hits = Array.make 64 0 in
  Pool.parallel_for ~chunk:5 pool ~lo:0 ~hi:63 (fun i ->
      hits.(i) <- hits.(i) + 1);
  Alcotest.(check (array int)) "each index exactly once" (Array.make 64 1) hits;
  (* Empty range: hi < lo runs nothing. *)
  Pool.parallel_for pool ~lo:5 ~hi:4 (fun _ -> Alcotest.fail "empty range ran");
  Pool.shutdown pool

let test_map_list () =
  let pool = Pool.create ~domains:3 () in
  let xs = List.init 101 (fun i -> i) in
  Alcotest.(check (list int))
    "map_list = List.map"
    (List.map (fun i -> i * i) xs)
    (Pool.map_list pool (fun i -> i * i) xs);
  Alcotest.(check (list int)) "empty" [] (Pool.map_list pool (fun i -> i) []);
  Pool.shutdown pool

let test_nested () =
  (* A task running on a worker may itself submit to the same pool;
     caller participation keeps this deadlock-free. *)
  let pool = Pool.create ~domains:4 () in
  let inner j = j * 2 in
  let outer i =
    Array.fold_left ( + ) 0
      (Pool.map_chunked pool inner (Array.init (i + 1) (fun j -> j)))
  in
  let got = Pool.map_chunked ~chunk:1 pool outer (Array.init 20 (fun i -> i)) in
  let expect = Array.init 20 (fun i -> i * (i + 1)) in
  Alcotest.(check (array int)) "nested map" expect got;
  Pool.shutdown pool

let test_shutdown () =
  let pool = Pool.create ~domains:4 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  let got = Pool.map_chunked pool (fun i -> i + 1) [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "post-shutdown runs in caller" [| 2; 3; 4 |] got

let test_sizes () =
  Alcotest.(check int) "sequential size" 1 (Pool.size Pool.sequential);
  Alcotest.check_raises "domains < 1 rejected"
    (Invalid_argument "Pool.create: domains < 1") (fun () ->
      ignore (Pool.create ~domains:0 ()));
  let p = Pool.create ~domains:1000 () in
  Alcotest.(check int) "clamped to 64" 64 (Pool.size p);
  Pool.shutdown p;
  let p = Pool.create ~domains:3 () in
  Alcotest.(check int) "size 3" 3 (Pool.size p);
  Pool.shutdown p

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map_chunked = Array.map" `Quick
            test_map_chunked_matches_seq;
          Alcotest.test_case "deterministic ordering" `Quick
            test_map_chunked_ordering;
          Alcotest.test_case "exception re-raised" `Quick
            test_exception_reraised;
          Alcotest.test_case "parallel_for" `Quick test_parallel_for;
          Alcotest.test_case "map_list" `Quick test_map_list;
          Alcotest.test_case "nested submission" `Quick test_nested;
          Alcotest.test_case "shutdown" `Quick test_shutdown;
          Alcotest.test_case "sizes" `Quick test_sizes;
        ] );
    ]
