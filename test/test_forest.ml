(* Forest: primitive operations, ancestry, aggregation, notifications. *)
open Tep_store
open Tep_tree

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let iv i = Value.Int i

let test_insert_roots () =
  let f = Forest.create () in
  let a = ok (Forest.insert f (iv 1)) in
  let b = ok (Forest.insert f (iv 2)) in
  Alcotest.(check int) "two roots" 2 (List.length (Forest.roots f));
  Alcotest.(check bool) "distinct" false (Oid.equal a b);
  Alcotest.(check int) "count" 2 (Forest.node_count f)

let test_insert_children () =
  let f = Forest.create () in
  let root = ok (Forest.insert f (iv 0)) in
  let c1 = ok (Forest.insert ~parent:root f (iv 1)) in
  let c2 = ok (Forest.insert ~parent:root f (iv 2)) in
  Alcotest.(check (list int)) "children sorted"
    [ Oid.to_int c1; Oid.to_int c2 ]
    (List.map Oid.to_int (Forest.children f root));
  Alcotest.(check bool) "parent" true (Forest.parent f c1 = Some root);
  Alcotest.(check int) "one root" 1 (List.length (Forest.roots f))

let test_insert_errors () =
  let f = Forest.create () in
  let root = ok (Forest.insert f (iv 0)) in
  (match Forest.insert ~parent:(Oid.of_int 999) f (iv 1) with
  | Ok _ -> Alcotest.fail "missing parent accepted"
  | Error _ -> ());
  match Forest.insert ~oid:root f (iv 1) with
  | Ok _ -> Alcotest.fail "duplicate oid accepted"
  | Error _ -> ()

let test_update () =
  let f = Forest.create () in
  let a = ok (Forest.insert f (iv 1)) in
  let prev = ok (Forest.update f a (iv 9)) in
  Alcotest.(check bool) "prev" true (Value.equal prev (iv 1));
  Alcotest.(check bool) "new" true (Value.equal (ok (Forest.value f a)) (iv 9))

let test_delete_leaf_only () =
  let f = Forest.create () in
  let root = ok (Forest.insert f (iv 0)) in
  let child = ok (Forest.insert ~parent:root f (iv 1)) in
  (match Forest.delete f root with
  | Ok _ -> Alcotest.fail "deleted non-leaf"
  | Error _ -> ());
  ignore (ok (Forest.delete f child));
  Alcotest.(check (list int)) "unlinked" [] (List.map Oid.to_int (Forest.children f root));
  ignore (ok (Forest.delete f root));
  Alcotest.(check int) "empty" 0 (Forest.node_count f)

let test_delete_subtree () =
  let f = Forest.create () in
  let root = ok (Forest.insert f (iv 0)) in
  let mid = ok (Forest.insert ~parent:root f (iv 1)) in
  let _ = ok (Forest.insert ~parent:mid f (iv 2)) in
  let _ = ok (Forest.insert ~parent:mid f (iv 3)) in
  let n = ok (Forest.delete_subtree f mid) in
  Alcotest.(check int) "removed" 3 n;
  Alcotest.(check int) "remaining" 1 (Forest.node_count f)

let test_ancestors_root_of () =
  let f = Forest.create () in
  let a = ok (Forest.insert f (iv 0)) in
  let b = ok (Forest.insert ~parent:a f (iv 1)) in
  let c = ok (Forest.insert ~parent:b f (iv 2)) in
  Alcotest.(check (list int)) "ancestors nearest-first"
    [ Oid.to_int b; Oid.to_int a ]
    (List.map Oid.to_int (Forest.ancestors f c));
  Alcotest.(check int) "root_of" (Oid.to_int a) (Oid.to_int (Forest.root_of f c));
  Alcotest.(check int) "root_of root" (Oid.to_int a) (Oid.to_int (Forest.root_of f a));
  Alcotest.(check (list int)) "root has none" [] (List.map Oid.to_int (Forest.ancestors f a))

let test_subtree_snapshot () =
  let f = Forest.create () in
  let a = ok (Forest.insert f (Value.Text "r")) in
  let b = ok (Forest.insert ~parent:a f (iv 1)) in
  let _ = ok (Forest.insert ~parent:b f (iv 2)) in
  let snap = ok (Forest.subtree f a) in
  Alcotest.(check int) "size" 3 (Subtree.size snap);
  (* snapshot is detached: later mutation doesn't change it *)
  ignore (ok (Forest.update f b (iv 99)));
  (match Subtree.find snap b with
  | Some t -> Alcotest.(check bool) "immutable" true (Value.equal t.Subtree.value (iv 1))
  | None -> Alcotest.fail "node missing in snapshot")

let test_aggregate () =
  let f = Forest.create () in
  let a = ok (Forest.insert f (iv 1)) in
  let a1 = ok (Forest.insert ~parent:a f (iv 11)) in
  let b = ok (Forest.insert f (iv 2)) in
  let before = Forest.node_count f in
  let agg, mapping = ok (Forest.aggregate f (Value.Text "agg") [ a; b ]) in
  (* copies: root + copy of a + copy of a1 + copy of b *)
  Alcotest.(check int) "added nodes" (before + 4) (Forest.node_count f);
  Alcotest.(check int) "mapping size" 3 (Oid.Map.cardinal mapping);
  (* originals untouched *)
  Alcotest.(check bool) "a intact" true (Forest.mem f a);
  Alcotest.(check bool) "a1 intact" true (Forest.mem f a1);
  (* copied structure mirrors original *)
  let copy_a = Oid.Map.find a mapping in
  Alcotest.(check int) "copy has child" 1 (List.length (Forest.children f copy_a));
  Alcotest.(check bool) "agg is root" true (Forest.parent f agg = None);
  (match Forest.aggregate f Value.Null [] with
  | Ok _ -> Alcotest.fail "empty aggregate accepted"
  | Error _ -> ());
  match Forest.aggregate f Value.Null [ Oid.of_int 12345 ] with
  | Ok _ -> Alcotest.fail "missing input accepted"
  | Error _ -> ()

let test_iter_preorder () =
  let f = Forest.create () in
  let a = ok (Forest.insert f (iv 0)) in
  let b = ok (Forest.insert ~parent:a f (iv 1)) in
  let _ = ok (Forest.insert ~parent:b f (iv 2)) in
  let _ = ok (Forest.insert ~parent:a f (iv 3)) in
  let order = ref [] in
  Forest.iter_preorder f a (fun o _ -> order := Oid.to_int o :: !order);
  Alcotest.(check int) "visited all" 4 (List.length !order);
  Alcotest.(check int) "root first" (Oid.to_int a) (List.nth (List.rev !order) 0)

let test_notifications () =
  let f = Forest.create () in
  let events = ref [] in
  Forest.on_change f (fun o -> events := Oid.to_int o :: !events);
  let a = ok (Forest.insert f (iv 0)) in
  let b = ok (Forest.insert ~parent:a f (iv 1)) in
  Alcotest.(check bool) "insert notified" true (List.mem (Oid.to_int b) !events);
  events := [];
  ignore (ok (Forest.update f b (iv 5)));
  Alcotest.(check (list int)) "update notifies node" [ Oid.to_int b ] !events;
  events := [];
  ignore (ok (Forest.delete f b));
  Alcotest.(check bool) "delete notifies node" true (List.mem (Oid.to_int b) !events)

let test_fresh_oid_reservation () =
  let f = Forest.create () in
  let reserved = Forest.fresh_oid f in
  let a = ok (Forest.insert f (iv 0)) in
  Alcotest.(check bool) "no clash" false (Oid.equal reserved a);
  let b = ok (Forest.insert ~oid:reserved f (iv 1)) in
  Alcotest.(check bool) "reserved usable" true (Oid.equal b reserved)

let () =
  Alcotest.run "forest"
    [
      ( "unit",
        [
          Alcotest.test_case "insert roots" `Quick test_insert_roots;
          Alcotest.test_case "insert children" `Quick test_insert_children;
          Alcotest.test_case "insert errors" `Quick test_insert_errors;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "delete leaf only" `Quick test_delete_leaf_only;
          Alcotest.test_case "delete subtree" `Quick test_delete_subtree;
          Alcotest.test_case "ancestors/root_of" `Quick
            test_ancestors_root_of;
          Alcotest.test_case "subtree snapshot" `Quick test_subtree_snapshot;
          Alcotest.test_case "aggregate" `Quick test_aggregate;
          Alcotest.test_case "iter preorder" `Quick test_iter_preorder;
          Alcotest.test_case "notifications" `Quick test_notifications;
          Alcotest.test_case "fresh oid" `Quick test_fresh_oid_reservation;
        ] );
    ]
