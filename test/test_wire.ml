(* Wire protocol unit + property tests: frame round-trips and
   incremental parsing, streaming-CRC equivalence, session sealing
   (tamper / replay / reflection rejection), request/response codec
   round-trips over every variant, and byte-level mutation fuzz —
   a corrupted frame must be rejected, never surface as valid. *)
open Tep_store
open Tep_tree
open Tep_core
open Tep_wire

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let payloads =
  [ ""; "x"; "hello world"; String.make 1000 '\x00'; "\xff\x00TW1\x00" ]

let test_frame_roundtrip () =
  List.iter
    (fun kind ->
      List.iter
        (fun p ->
          let s = Frame.to_string ~kind p in
          match Frame.parse s 0 with
          | Frame.Frame { kind = k; payload; consumed } ->
              Alcotest.(check bool) "kind" true (k = kind);
              Alcotest.(check string) "payload" p payload;
              Alcotest.(check int) "consumed" (String.length s) consumed
          | _ -> Alcotest.fail "expected a complete frame")
        payloads)
    [ Frame.Clear; Frame.Sealed ]

let test_frame_incremental () =
  let s = Frame.to_string ~kind:Frame.Clear "incremental payload" in
  (* every strict prefix wants more bytes; the full string parses *)
  for n = 0 to String.length s - 1 do
    match Frame.parse (String.sub s 0 n) 0 with
    | Frame.Need_more k ->
        Alcotest.(check bool) "need positive" true (k > 0);
        Alcotest.(check bool) "never overshoots" true
          (k <= String.length s - n)
    | _ -> Alcotest.fail (Printf.sprintf "prefix %d should need more" n)
  done;
  (* two frames back to back parse in sequence from an offset *)
  let s2 = s ^ Frame.to_string ~kind:Frame.Sealed "second" in
  match Frame.parse s2 0 with
  | Frame.Frame { consumed; _ } -> (
      match Frame.parse s2 consumed with
      | Frame.Frame { payload; _ } ->
          Alcotest.(check string) "second frame" "second" payload
      | _ -> Alcotest.fail "second frame should parse")
  | _ -> Alcotest.fail "first frame should parse"

let test_frame_oversized () =
  let s = Frame.to_string ~kind:Frame.Clear (String.make 100 'a') in
  match Frame.parse ~max_payload:50 s 0 with
  | Frame.Oversized n -> Alcotest.(check int) "declared length" 100 n
  | _ -> Alcotest.fail "expected Oversized"

let test_frame_bad_magic () =
  (match Frame.parse "XXXXXXXXXXXX" 0 with
  | Frame.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic must be Corrupt");
  match Frame.parse "TW1Zxxxxxxxxx" 0 with
  | Frame.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad kind must be Corrupt"

(* Any single byte mutation of a valid frame must never parse back to
   the original payload — and must never raise. *)
let prop_frame_mutation =
  QCheck2.Test.make ~name:"frame byte mutation never yields the payload"
    ~count:1000
    QCheck2.Gen.(
      triple
        (string_size ~gen:char (int_range 0 60))
        (int_range 0 1_000_000) (int_range 1 255))
    (fun (payload, pos, delta) ->
      let s = Frame.to_string ~kind:Frame.Clear payload in
      let pos = pos mod String.length s in
      let mutated =
        String.mapi
          (fun i c ->
            if i = pos then Char.chr ((Char.code c + delta) land 0xff) else c)
          s
      in
      match Frame.parse mutated 0 with
      | Frame.Frame { payload = p; _ } -> p <> payload
      | Frame.Need_more _ | Frame.Oversized _ | Frame.Corrupt _ -> true)

(* ------------------------------------------------------------------ *)
(* Streaming CRC                                                       *)
(* ------------------------------------------------------------------ *)

let prop_crc_streaming =
  QCheck2.Test.make ~name:"streamed CRC equals one-shot CRC" ~count:500
    QCheck2.Gen.(
      pair (string_size ~gen:char (int_range 0 300)) (int_range 0 1_000_000))
    (fun (s, cut) ->
      let one_shot = Tep_crypto.Crc32.digest s in
      let cut = if String.length s = 0 then 0 else cut mod String.length s in
      let ctx = Tep_crypto.Crc32.init () in
      Tep_crypto.Crc32.feed_sub ctx s 0 cut;
      Tep_crypto.Crc32.feed ctx (String.sub s cut (String.length s - cut));
      Tep_crypto.Crc32.finalize ctx = one_shot)

(* ------------------------------------------------------------------ *)
(* Session sealing                                                     *)
(* ------------------------------------------------------------------ *)

let transcript =
  Session.transcript ~name:"alice" ~client_nonce:(String.make 16 'c')
    ~server_nonce:(String.make 16 's')
    ~key_share:(String.make 64 'k')

let key =
  Session.derive_key ~transcript ~signature:"not a real signature"
    ~secret:(String.make Session.key_share_len '\x2a')

let test_seal_roundtrip () =
  let msg = "the request body" in
  let sealed = Session.seal ~key ~dir:Session.To_server ~seq:7 msg in
  (match Session.open_ ~key ~dir:Session.To_server ~seq:7 sealed with
  | Ok m -> Alcotest.(check string) "round trip" msg m
  | Error e -> Alcotest.fail e);
  (* replay at a different sequence number *)
  (match Session.open_ ~key ~dir:Session.To_server ~seq:8 sealed with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong seq must be rejected");
  (* reflection back in the other direction *)
  (match Session.open_ ~key ~dir:Session.To_client ~seq:7 sealed with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong direction must be rejected");
  (* wrong key *)
  let key2 =
    Session.derive_key ~transcript:"other" ~signature:"other" ~secret:"other"
  in
  (match Session.open_ ~key:key2 ~dir:Session.To_server ~seq:7 sealed with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong key must be rejected");
  (* too short to carry a tag *)
  match Session.open_ ~key ~dir:Session.To_server ~seq:0 "short" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short payload must be rejected"

(* The key derivation hashes in the transported secret: the same
   wire-visible transcript and signature with a wrong secret must
   yield a key that opens nothing. *)
let test_key_requires_secret () =
  let sealed = Session.seal ~key ~dir:Session.To_server ~seq:0 "msg" in
  let eve =
    Session.derive_key ~transcript ~signature:"not a real signature"
      ~secret:(String.make Session.key_share_len '\x00')
  in
  match Session.open_ ~key:eve ~dir:Session.To_server ~seq:0 sealed with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "key derived without the secret must be rejected"

let prop_seal_mutation =
  QCheck2.Test.make ~name:"sealed-frame byte mutation is rejected" ~count:500
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 1 255))
    (fun (pos, delta) ->
      let msg = "an authenticated message" in
      let sealed = Session.seal ~key ~dir:Session.To_client ~seq:3 msg in
      let pos = pos mod String.length sealed in
      let mutated =
        String.mapi
          (fun i c ->
            if i = pos then Char.chr ((Char.code c + delta) land 0xff) else c)
          sealed
      in
      match Session.open_ ~key ~dir:Session.To_client ~seq:3 mutated with
      | Error _ -> true
      | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Message codecs                                                      *)
(* ------------------------------------------------------------------ *)

let sample_record =
  {
    Record.seq_id = 3;
    participant = "alice";
    kind = Record.Update;
    inherited = true;
    input_oids = [ Oid.of_int 4 ];
    input_hashes = [ String.make 20 '\x01' ];
    output_oid = Oid.of_int 4;
    output_hash = String.make 20 '\x02';
    output_value = Some (Value.Int 42);
    prev_checksums = [ "prev \x00 checksum" ];
    checksum = "checksum bytes";
  }

let sample_report =
  {
    Message.rp_records = 12;
    rp_objects = 4;
    rp_signatures = 12;
    rp_violations = [ "violation one"; "violation two" ];
  }

let clean_report =
  { Message.rp_records = 9; rp_objects = 3; rp_signatures = 9; rp_violations = [] }

let sample_requests =
  [
    Message.Hello { name = "alice"; nonce = String.make 16 '\x07' };
    Message.Auth
      { signature = String.make 64 '\x55'; key_share = String.make 64 '\xa1' };
    Message.Submit
      (Message.Op_insert
         { table = "stock"; cells = [| Value.Text "W-1"; Value.Int 9; Value.Null |] });
    Message.Submit
      (Message.Op_update
         { table = "stock"; row = 3; col = 1; value = Value.Float 2.5 });
    Message.Submit (Message.Op_delete { table = "stock"; row = 0 });
    Message.Submit
      (Message.Op_aggregate
         { inputs = [ Oid.of_int 1; Oid.of_int 2 ]; value = Value.Text "agg" });
    Message.Query None;
    Message.Query (Some (Oid.of_int 17));
    Message.Verify None;
    Message.Verify (Some (Oid.of_int 0));
    Message.Audit;
    Message.Checkpoint;
    Message.Root_hash;
    Message.Stats;
    Message.Submit_idem
      {
        rid = "f0e1d2c3b4a59687";
        op = Message.Op_insert { table = "stock"; cells = [| Value.Int 1 |] };
      };
    Message.Submit_idem
      { rid = ""; op = Message.Op_delete { table = "stock"; row = 2 } };
    Message.Checkpoint_idem { rid = "retry \x00 me" };
    Message.Ping;
    Message.Lineage { kind = Message.L_why; oid = Oid.of_int 8 };
    Message.Lineage { kind = Message.L_inputs; oid = Oid.of_int 0 };
    Message.Lineage { kind = Message.L_depth; oid = Oid.of_int 123456 };
    Message.Lineage { kind = Message.L_impact; oid = Oid.of_int 2 };
    Message.Annotated_query { table = "stock"; where = "qty > 50"; agg = "" };
    Message.Annotated_query
      { table = "t"; where = ""; agg = "sum(qty)" };
    Message.Prove { table = "stock"; row = 0; col = None };
    Message.Prove { table = "orders"; row = 12345; col = Some 2 };
    Message.Audit_sample { seed = "sweep-1"; alpha_ppm = 100_000 };
    Message.Audit_sample { seed = ""; alpha_ppm = 1_000_000 };
  ]

let sample_responses =
  [
    Message.Challenge { nonce = String.make 16 '\x09' };
    Message.Auth_ok { server = "provdbd" };
    Message.Submitted { row = Some 5; oid = None; records = 4 };
    Message.Submitted { row = None; oid = Some (Oid.of_int 31); records = 2 };
    Message.Records [];
    Message.Records [ sample_record; sample_record ];
    Message.Verified { report = clean_report; store_audit = None };
    Message.Verified { report = sample_report; store_audit = Some clean_report };
    Message.Audited { report = sample_report; examined = 7; objects = 3 };
    Message.Checkpointed { generation = 4; lsn = 128 };
    Message.Checkpointed { generation = 1; lsn = -1 };
    Message.Root { hash = String.make 32 '\xee' };
    Message.Stats_resp
      { batches = 12; ops = 48; sign_wall_us = 1503; sign_cpu_us = 5021 };
    Message.Stats_resp
      { batches = 0; ops = 0; sign_wall_us = 0; sign_cpu_us = 0 };
    Message.Error_resp { code = Message.Auth_required; message = "who?" };
    Message.Error_resp { code = Message.Failed; message = "" };
    Message.Error_resp { code = Message.Wal_failed; message = "wal: fsync" };
    Message.Error_resp { code = Message.Shutting_down; message = "draining" };
    Message.Pong
      {
        ready = true;
        draining = false;
        active = 3;
        queued_ops = 17;
        batches = 128;
        ops = 512;
        dedup_hits = 9;
        wal_failures = 1;
        shed = 40;
        reaped = 6;
      };
    Message.Pong
      {
        ready = false;
        draining = true;
        active = 0;
        queued_ops = 0;
        batches = 0;
        ops = 0;
        dedup_hits = 0;
        wal_failures = 0;
        shed = 0;
        reaped = 0;
      };
    Message.Overloaded_resp { retry_after_ms = 25; message = "queue full" };
    Message.Overloaded_resp { retry_after_ms = 0; message = "" };
    Message.Lineage_resp
      { poly = "\x01\x01\x01\x02\x01"; depth = 3;
        oids = [ Oid.of_int 2; Oid.of_int 5 ] };
    Message.Lineage_resp { poly = ""; depth = 0; oids = [] };
    Message.Annotated_resp
      {
        arows =
          [
            (2, [| Value.Text "W-1"; Value.Int 9 |], "\x01\x01\x01\x02\x01");
            (5, [| Value.Null |], "");
          ];
        avalue = Some (Value.Int 107);
        annot = "opaque annotation bytes \x00\xff";
      };
    Message.Annotated_resp { arows = []; avalue = None; annot = "" };
    Message.Shard_stats_resp
      [
        {
          Message.ss_batches = 3;
          ss_ops = 17;
          ss_queued = 0;
          ss_root_recomputes = 2;
          ss_root_hits = 9;
          ss_proofs_served = 40;
          ss_proof_cache_hits = 31;
          ss_proof_cache_misses = 9;
          ss_proof_bytes = 5532;
        };
        {
          Message.ss_batches = 0;
          ss_ops = 0;
          ss_queued = 0;
          ss_root_recomputes = 0;
          ss_root_hits = 0;
          ss_proofs_served = 0;
          ss_proof_cache_hits = 0;
          ss_proof_cache_misses = 0;
          ss_proof_bytes = 0;
        };
      ];
    Message.Proof_resp
      {
        shard = 1;
        shard_roots = [ String.make 20 '\x0a'; String.make 20 '\x0b' ];
        items =
          [
            ("opaque proof bytes \x00\xff", [ sample_record ]);
            ("", []);
          ];
      };
    Message.Proof_resp { shard = 0; shard_roots = []; items = [] };
    Message.Audit_sample_resp
      { report = sample_report; sampled = 12; population = 480 };
    Message.Audit_sample_resp
      { report = clean_report; sampled = 0; population = 0 };
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      let s = Message.request_to_string req in
      let req', consumed = Message.decode_request s 0 in
      Alcotest.(check int) "consumed all" (String.length s) consumed;
      Alcotest.(check string) "stable re-encoding" s
        (Message.request_to_string req'))
    sample_requests

let test_response_roundtrip () =
  List.iter
    (fun resp ->
      let s = Message.response_to_string resp in
      let resp', consumed = Message.decode_response s 0 in
      Alcotest.(check int) "consumed all" (String.length s) consumed;
      Alcotest.(check string) "stable re-encoding" s
        (Message.response_to_string resp'))
    sample_responses

(* A v6 server's Pong ends after [shed]; the v7 [reaped] field must
   decode as an optional trailing field (default 0), or a v7 client
   could never Ping a v6 server. *)
let test_pong_v6_compat () =
  let v7 =
    Message.response_to_string
      (Message.Pong
         {
           ready = true;
           draining = false;
           active = 3;
           queued_ops = 17;
           batches = 128;
           ops = 512;
           dedup_hits = 9;
           wal_failures = 1;
           shed = 40;
           reaped = 0;
         })
  in
  (* a reaped count of 0 encodes as a single 0x00 varint byte: strip
     it to obtain exactly what a v6 server would have sent *)
  let v6 = String.sub v7 0 (String.length v7 - 1) in
  let resp, consumed = Message.decode_response v6 0 in
  Alcotest.(check int) "consumed all" (String.length v6) consumed;
  match resp with
  | Message.Pong p ->
      Alcotest.(check int) "reaped defaults to 0" 0 p.reaped;
      Alcotest.(check int) "shed survives" 40 p.shed
  | _ -> Alcotest.fail "expected Pong"

(* The wire report must render byte-identically to the in-process
   verifier's formatter — that is what lets a remote client print the
   same report the server computed. *)
let test_report_rendering () =
  let reports =
    [
      {
        Verifier.violations = [];
        records_checked = 12;
        objects_checked = 5;
        signatures_checked = 12;
      };
      {
        Verifier.violations =
          [
            Verifier.No_provenance (Oid.of_int 7);
            Verifier.Duplicate_seq { oid = Oid.of_int 2; seq = 5 };
            Verifier.Object_mismatch
              {
                oid = Oid.of_int 1;
                expected = String.make 20 '\x03';
                actual = String.make 20 '\x04';
              };
          ];
        records_checked = 3;
        objects_checked = 1;
        signatures_checked = 3;
      };
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check string)
        "render_report = pp_report"
        (Format.asprintf "%a" Verifier.pp_report r)
        (Message.render_report (Message.report_of_verifier r)))
    reports

let gen_bytes = QCheck2.Gen.(string_size ~gen:char (int_range 0 200))

let survives f =
  match f () with
  | _ -> true
  | exception (Failure _ | Invalid_argument _) -> true
  | exception _ -> false

let fuzz name f =
  QCheck2.Test.make ~name ~count:2000 gen_bytes (fun s -> survives (fun () -> f s))

let fuzz_decoders =
  [
    fuzz "Message.decode_request" (fun s -> ignore (Message.decode_request s 0));
    fuzz "Message.decode_response" (fun s ->
        ignore (Message.decode_response s 0));
    fuzz "Frame.parse" (fun s ->
        match Frame.parse s 0 with
        | Frame.Need_more _ | Frame.Frame _ | Frame.Oversized _
        | Frame.Corrupt _ ->
            ());
    fuzz "Frame.parse with magic prefix" (fun s ->
        match Frame.parse ("TW1" ^ s) 0 with
        | Frame.Need_more _ | Frame.Frame _ | Frame.Oversized _
        | Frame.Corrupt _ ->
            ());
  ]

let () =
  Alcotest.run "wire"
    [
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "incremental" `Quick test_frame_incremental;
          Alcotest.test_case "oversized" `Quick test_frame_oversized;
          Alcotest.test_case "bad magic/kind" `Quick test_frame_bad_magic;
          qtest prop_frame_mutation;
          qtest prop_crc_streaming;
        ] );
      ( "session",
        [
          Alcotest.test_case "seal/open" `Quick test_seal_roundtrip;
          Alcotest.test_case "key requires secret" `Quick
            test_key_requires_secret;
          qtest prop_seal_mutation;
        ] );
      ( "messages",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
          Alcotest.test_case "pong v6 compat" `Quick test_pong_v6_compat;
          Alcotest.test_case "report rendering" `Quick test_report_rendering;
        ]
        @ List.map qtest fuzz_decoders );
    ]
