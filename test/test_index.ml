(* Secondary indexes: maintenance under mutation, query routing,
   agreement with scans. *)
open Tep_store

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let schema =
  Schema.make
    [
      { Schema.name = "k"; ty = Value.TInt; nullable = false };
      { Schema.name = "grp"; ty = Value.TText; nullable = false };
    ]

let mk () =
  let t = Index.Indexed_table.create (Table.create ~name:"t" schema) in
  ok (Index.Indexed_table.add_index t ~column:"grp");
  for i = 0 to 19 do
    ignore
      (ok
         (Index.Indexed_table.insert t
            [| Value.Int i; Value.Text (if i mod 2 = 0 then "even" else "odd") |]))
  done;
  t

let test_lookup () =
  let t = mk () in
  let evens = ok (Index.Indexed_table.select_eq t ~column:"grp" (Value.Text "even")) in
  Alcotest.(check int) "10 evens" 10 (List.length evens);
  Alcotest.(check int) "none" 0
    (List.length (ok (Index.Indexed_table.select_eq t ~column:"grp" (Value.Text "ghost"))))

let test_unindexed_fallback () =
  let t = mk () in
  let r = ok (Index.Indexed_table.select_eq t ~column:"k" (Value.Int 5)) in
  Alcotest.(check int) "scan fallback" 1 (List.length r)

let test_maintenance_on_update () =
  let t = mk () in
  (* flip row 0 to odd *)
  ignore (ok (Index.Indexed_table.update_cell t 0 1 (Value.Text "odd")));
  Alcotest.(check int) "evens shrink" 9
    (List.length (ok (Index.Indexed_table.select_eq t ~column:"grp" (Value.Text "even"))));
  Alcotest.(check int) "odds grow" 11
    (List.length (ok (Index.Indexed_table.select_eq t ~column:"grp" (Value.Text "odd"))))

let test_maintenance_on_delete () =
  let t = mk () in
  Alcotest.(check bool) "deleted" true (Index.Indexed_table.delete t 0);
  Alcotest.(check bool) "gone twice" false (Index.Indexed_table.delete t 0);
  Alcotest.(check int) "evens shrink" 9
    (List.length (ok (Index.Indexed_table.select_eq t ~column:"grp" (Value.Text "even"))))

let test_select_routing () =
  let t = mk () in
  (* indexed Eq conjunct + residual filter *)
  let pred =
    Query.And
      ( Query.Cmp ("grp", Query.Eq, Value.Text "even"),
        Query.Cmp ("k", Query.Lt, Value.Int 10) )
  in
  let via_index = ok (Index.Indexed_table.select t pred) in
  let via_scan = ok (Query.select (Index.Indexed_table.table t) pred) in
  Alcotest.(check int) "counts agree" (List.length via_scan) (List.length via_index);
  Alcotest.(check (list int)) "ids agree"
    (List.map (fun r -> r.Table.id) via_scan)
    (List.sort compare (List.map (fun r -> r.Table.id) via_index))

let test_duplicate_index_rejected () =
  let t = mk () in
  match Index.Indexed_table.add_index t ~column:"grp" with
  | Ok () -> Alcotest.fail "duplicate accepted"
  | Error _ -> ()

let test_unknown_column () =
  let t = Index.Indexed_table.create (Table.create ~name:"x" schema) in
  match Index.Indexed_table.add_index t ~column:"nope" with
  | Ok () -> Alcotest.fail "unknown column accepted"
  | Error _ -> ()

let test_cardinality () =
  let tbl = Table.create ~name:"c" schema in
  for i = 0 to 9 do
    ignore (Table.insert tbl [| Value.Int i; Value.Text (string_of_int (i mod 3)) |])
  done;
  let ix = ok (Index.create tbl ~column:"grp") in
  Alcotest.(check int) "3 groups" 3 (Index.cardinality ix);
  Alcotest.(check string) "column" "grp" (Index.column ix)

let prop_index_agrees_with_scan =
  QCheck2.Test.make ~name:"indexed select = scan select" ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 40) (pair (int_range 0 8) (int_range 0 3)))
        (int_range 0 3))
    (fun (rows, probe) ->
      let t = Index.Indexed_table.create (Table.create ~name:"p" schema) in
      (match Index.Indexed_table.add_index t ~column:"grp" with
      | Ok () -> ()
      | Error e -> failwith e);
      List.iter
        (fun (k, g) ->
          ignore
            (Index.Indexed_table.insert t
               [| Value.Int k; Value.Text (string_of_int g) |]))
        rows;
      let v = Value.Text (string_of_int probe) in
      let via_ix =
        match Index.Indexed_table.select_eq t ~column:"grp" v with
        | Ok l -> List.map (fun r -> r.Table.id) l
        | Error e -> failwith e
      in
      let via_scan =
        match
          Query.select (Index.Indexed_table.table t)
            (Query.Cmp ("grp", Query.Eq, v))
        with
        | Ok l -> List.map (fun r -> r.Table.id) l
        | Error e -> failwith e
      in
      List.sort compare via_ix = via_scan)

let () =
  Alcotest.run "index"
    [
      ( "unit",
        [
          Alcotest.test_case "lookup" `Quick test_lookup;
          Alcotest.test_case "unindexed fallback" `Quick
            test_unindexed_fallback;
          Alcotest.test_case "maintenance on update" `Quick
            test_maintenance_on_update;
          Alcotest.test_case "maintenance on delete" `Quick
            test_maintenance_on_delete;
          Alcotest.test_case "select routing" `Quick test_select_routing;
          Alcotest.test_case "duplicate rejected" `Quick
            test_duplicate_index_rejected;
          Alcotest.test_case "unknown column" `Quick test_unknown_column;
          Alcotest.test_case "cardinality" `Quick test_cardinality;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_index_agrees_with_scan ]);
    ]
