(* Tables: CRUD, id stability, iteration order, codec. *)
open Tep_store

let mk_table () = Table.create ~name:"t" (Schema.all_int [ "a"; "b" ])

let row i j = [| Value.Int i; Value.Int j |]

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let test_insert_get () =
  let t = mk_table () in
  let id0 = ok (Table.insert t (row 1 2)) in
  let id1 = ok (Table.insert t (row 3 4)) in
  Alcotest.(check int) "ids distinct" 1 (id1 - id0);
  (match Table.get t id0 with
  | Some r -> Alcotest.(check bool) "cells" true (Value.equal r.Table.cells.(1) (Value.Int 2))
  | None -> Alcotest.fail "row missing");
  Alcotest.(check int) "count" 2 (Table.row_count t)

let test_insert_validates () =
  let t = mk_table () in
  match Table.insert t [| Value.Text "no"; Value.Int 1 |] with
  | Ok _ -> Alcotest.fail "type error accepted"
  | Error _ -> ()

let test_insert_isolation () =
  (* mutation of the caller's array must not leak into the table *)
  let t = mk_table () in
  let cells = row 1 2 in
  let id = ok (Table.insert t cells) in
  cells.(0) <- Value.Int 999;
  match Table.get t id with
  | Some r -> Alcotest.(check bool) "copied" true (Value.equal r.Table.cells.(0) (Value.Int 1))
  | None -> Alcotest.fail "row missing"

let test_delete () =
  let t = mk_table () in
  let id = ok (Table.insert t (row 1 2)) in
  Alcotest.(check bool) "deleted" true (Table.delete t id);
  Alcotest.(check bool) "gone" true (Table.get t id = None);
  Alcotest.(check bool) "double delete" false (Table.delete t id);
  (* ids are never reused *)
  let id2 = ok (Table.insert t (row 5 6)) in
  Alcotest.(check bool) "no reuse" true (id2 > id)

let test_update_cell () =
  let t = mk_table () in
  let id = ok (Table.insert t (row 1 2)) in
  let prev = ok (Table.update_cell t id 1 (Value.Int 42)) in
  Alcotest.(check bool) "prev" true (Value.equal prev (Value.Int 2));
  (match Table.update_cell t id 1 (Value.Text "bad") with
  | Ok _ -> Alcotest.fail "type check missed"
  | Error _ -> ());
  (match Table.update_cell t id 9 (Value.Int 0) with
  | Ok _ -> Alcotest.fail "bad column accepted"
  | Error _ -> ());
  match Table.update_cell t 999 0 (Value.Int 0) with
  | Ok _ -> Alcotest.fail "missing row accepted"
  | Error _ -> ()

let test_update_row () =
  let t = mk_table () in
  let id = ok (Table.insert t (row 1 2)) in
  let prev = ok (Table.update_row t id (row 9 8)) in
  Alcotest.(check bool) "prev row" true (Value.equal prev.(0) (Value.Int 1));
  match Table.get t id with
  | Some r -> Alcotest.(check bool) "new" true (Value.equal r.Table.cells.(0) (Value.Int 9))
  | None -> Alcotest.fail "row missing"

let test_iteration_order () =
  let t = mk_table () in
  let ids = List.init 50 (fun i -> ok (Table.insert t (row i i))) in
  (* delete every third, insert a few more *)
  List.iteri (fun i id -> if i mod 3 = 0 then ignore (Table.delete t id)) ids;
  let _ = ok (Table.insert t (row 100 100)) in
  let seen = ref [] in
  Table.iter (fun r -> seen := r.Table.id :: !seen) t;
  let seen = List.rev !seen in
  Alcotest.(check (list int)) "sorted ids" (List.sort compare seen) seen;
  Alcotest.(check int) "rows function agrees" (List.length seen)
    (List.length (Table.rows t))

let test_insert_with_id () =
  let t = mk_table () in
  ok (Table.insert_with_id t 10 (row 1 1));
  (match Table.insert_with_id t 10 (row 2 2) with
  | Ok () -> Alcotest.fail "duplicate id accepted"
  | Error _ -> ());
  (* allocator bumped past explicit ids *)
  let id = ok (Table.insert t (row 3 3)) in
  Alcotest.(check bool) "bumped" true (id > 10)

let test_fold () =
  let t = mk_table () in
  for i = 1 to 10 do
    ignore (Table.insert t (row i 0))
  done;
  let sum =
    Table.fold
      (fun acc r ->
        match r.Table.cells.(0) with Value.Int i -> acc + i | _ -> acc)
      0 t
  in
  Alcotest.(check int) "fold sum" 55 sum

let test_codec () =
  let t = mk_table () in
  for i = 1 to 20 do
    ignore (Table.insert t (row i (i * i)))
  done;
  ignore (Table.delete t 5);
  let buf = Buffer.create 256 in
  Table.encode buf t;
  let t', off = Table.decode (Buffer.contents buf) 0 in
  Alcotest.(check int) "consumed" (Buffer.length buf) off;
  Alcotest.(check int) "rows" (Table.row_count t) (Table.row_count t');
  Alcotest.(check (list int)) "ids" (Table.row_ids t) (Table.row_ids t');
  (* next_id preserved: new insert gets a fresh id *)
  let id = ok (Table.insert t' (row 0 0)) in
  Alcotest.(check int) "next id" 20 id

let () =
  Alcotest.run "table"
    [
      ( "unit",
        [
          Alcotest.test_case "insert/get" `Quick test_insert_get;
          Alcotest.test_case "insert validates" `Quick test_insert_validates;
          Alcotest.test_case "insert isolation" `Quick test_insert_isolation;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "update_cell" `Quick test_update_cell;
          Alcotest.test_case "update_row" `Quick test_update_row;
          Alcotest.test_case "iteration order" `Quick test_iteration_order;
          Alcotest.test_case "insert_with_id" `Quick test_insert_with_id;
          Alcotest.test_case "fold" `Quick test_fold;
          Alcotest.test_case "codec" `Quick test_codec;
        ] );
    ]
