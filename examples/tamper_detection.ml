(* Attack gallery: run every attack of the threat model (Section 2.2)
   against a live history and show the verifier catching each one.

     dune exec examples/tamper_detection.exe *)

open Tep_store
open Tep_tree
open Tep_core

let ok = function Ok v -> v | Error e -> failwith e

let () =
  let drbg = Tep_crypto.Drbg.create ~seed:"attack-gallery" in
  let ca = Tep_crypto.Pki.create_ca ~name:"CA" drbg in
  let directory =
    Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
  in
  let mk name =
    let p = Participant.create ~ca ~name drbg in
    Participant.Directory.register directory p;
    p
  in
  let alice = mk "alice" and bob = mk "bob" in
  let eve = mk "eve" (* insider attacker: valid key and certificate *) in

  let db = Database.create ~name:"target" in
  ignore (ok (Database.create_table db ~name:"t" (Schema.all_int [ "a"; "b" ])));
  let engine = Engine.create ~directory db in
  let row = ok (Engine.insert_row engine alice ~table:"t" [| Value.Int 1; Value.Int 2 |]) in
  ok (Engine.update_cell engine bob ~table:"t" ~row ~col:0 (Value.Int 10));
  ok (Engine.update_cell engine alice ~table:"t" ~row ~col:0 (Value.Int 20));
  ok (Engine.update_cell engine bob ~table:"t" ~row ~col:1 (Value.Int 30));

  let data, records = ok (Engine.deliver engine (Engine.root_oid engine)) in
  let verify ?(data = data) records =
    Verifier.verify ~algo:(Engine.algo engine) ~directory ~data records
  in

  let attacks : (string * (unit -> Verifier.report)) list =
    [
      ( "R1  modify a record's stored output hash",
        fun () -> verify (Tamper.modify_output_hash ~idx:2 records) );
      ( "R1  insider rewrites + re-signs a record as herself",
        fun () -> verify (Tamper.resign_as ~idx:2 ~attacker:eve records) );
      ( "R2  remove a middle provenance record",
        fun () -> verify (Tamper.remove ~idx:2 records) );
      ( "R3  splice in a forged (validly signed) record",
        fun () -> verify (ok (Tamper.insert_forged ~after:1 ~attacker:eve records)) );
      ( "R4  modify the data without provenance",
        fun () -> verify ~data:(Tamper.tamper_data_value data) records );
      ( "R5  attach this provenance to a different object",
        fun () -> verify ~data:(Tamper.reassign_provenance data) records );
      ( "R6  forge a record in a non-colluder's name",
        fun () ->
          let forged = ok (Tamper.insert_forged ~after:1 ~attacker:eve records) in
          verify (Tamper.reattribute ~idx:2 ~to_:"bob" forged) );
      ( "R8  repudiate: claim alice's record was bob's",
        fun () ->
          let idx =
            Option.get
              (List.find_index
                 (fun r -> r.Record.participant = "alice")
                 records)
          in
          verify (Tamper.reattribute ~idx ~to_:"bob" records) );
    ]
  in
  print_endline "=== attack gallery ===";
  let honest = verify records in
  Printf.printf "%-52s %s\n" "honest delivery"
    (if Verifier.ok honest then "VERIFIED" else "BROKEN?!");
  assert (Verifier.ok honest);
  List.iter
    (fun (name, attack) ->
      let report = attack () in
      Printf.printf "%-52s %s\n" name
        (if Verifier.ok report then "MISSED (bug!)"
         else
           Printf.sprintf "DETECTED (%s)"
             (match report.Verifier.violations with
             | v :: _ ->
                 let s = Verifier.violation_to_string v in
                 if String.length s > 60 then String.sub s 0 60 ^ "…" else s
             | [] -> "?"));
      assert (not (Verifier.ok report)))
    attacks;

  (* R7 needs a crafted history: alice, bob, alice, alice on one cell. *)
  ok (Engine.update_cell engine alice ~table:"t" ~row ~col:1 (Value.Int 40));
  ok (Engine.update_cell engine bob ~table:"t" ~row ~col:1 (Value.Int 50));
  ok (Engine.update_cell engine alice ~table:"t" ~row ~col:1 (Value.Int 60));
  ok (Engine.update_cell engine alice ~table:"t" ~row ~col:1 (Value.Int 70));
  let cell = Option.get (Tree_view.cell_oid (Engine.mapping engine) "t" row 1) in
  let cdata, crecords = ok (Engine.deliver engine cell) in
  let first =
    Option.get (List.find_index (fun r -> r.Record.participant = "alice"
      && r.Record.seq_id >= 1) crecords)
  in
  let last = first + 2 in
  let colluded =
    ok
      (Tamper.collude_remove_span ~first ~last
         ~resign:(fun n -> if n = "alice" then Some alice else None)
         crecords)
  in
  let report =
    Verifier.verify ~algo:(Engine.algo engine) ~directory ~data:cdata colluded
  in
  Printf.printf "%-52s %s\n"
    "R7  colluders cut out bob's record (successor exists)"
    (if Verifier.ok report then "MISSED (bug!)" else "DETECTED");
  assert (not (Verifier.ok report));
  print_endline "\nall attacks detected. tamper_detection done."
