(* Quickstart: track provenance for a small relational database,
   deliver an object to a recipient, and verify it.

     dune exec examples/quickstart.exe *)

open Tep_store
open Tep_core

let ok = function Ok v -> v | Error e -> failwith e

let () =
  (* 1. Set up a PKI: a certificate authority and two participants. *)
  let drbg = Tep_crypto.Drbg.create_system () in
  let ca = Tep_crypto.Pki.create_ca ~name:"Example CA" drbg in
  let directory =
    Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
  in
  let alice = Participant.create ~ca ~name:"alice" drbg in
  let bob = Participant.create ~ca ~name:"bob" drbg in
  Participant.Directory.register directory alice;
  Participant.Directory.register directory bob;
  print_endline "participants: alice, bob (certified by Example CA)";

  (* 2. Create a backend database and attach the provenance engine. *)
  let db = Database.create ~name:"inventory" in
  let schema =
    Schema.make
      [
        { Schema.name = "sku"; ty = Value.TText; nullable = false };
        { Schema.name = "qty"; ty = Value.TInt; nullable = false };
      ]
  in
  ignore (ok (Database.create_table db ~name:"stock" schema));
  let engine = Engine.create ~directory db in

  (* 3. Perform tracked operations.  Every mutation emits signed
     provenance records for the touched object and its ancestors. *)
  let r1 =
    ok
      (Engine.insert_row engine alice ~table:"stock"
         [| Value.Text "WIDGET-1"; Value.Int 100 |])
  in
  let _r2 =
    ok
      (Engine.insert_row engine alice ~table:"stock"
         [| Value.Text "GADGET-2"; Value.Int 40 |])
  in
  ok
    (Engine.update_cell_named engine bob ~table:"stock" ~row:r1 ~column:"qty"
       (Value.Int 93));
  Printf.printf "3 operations recorded; %d provenance records, %d bytes\n"
    (Provstore.record_count (Engine.provstore engine))
    (Provstore.paper_space_bytes (Engine.provstore engine));

  (* 4. Deliver the whole database to a recipient and verify. *)
  let data, records = ok (Engine.deliver engine (Engine.root_oid engine)) in
  let report = Verifier.verify ~algo:(Engine.algo engine) ~directory ~data records in
  Format.printf "recipient check: %a@." Verifier.pp_report report;

  (* 5. Inspect a single cell's provenance chain. *)
  let cell =
    Option.get (Tep_tree.Tree_view.cell_oid (Engine.mapping engine) "stock" r1 1)
  in
  let _, cell_records = ok (Engine.deliver engine cell) in
  print_endline "provenance of stock.row0.qty:";
  List.iter (fun r -> Format.printf "  %a@." Record.pp r) cell_records;

  (* 6. Tamper with the data behind the engine's back... *)
  ignore (Tep_tree.Forest.update (Engine.forest engine) cell (Value.Int 9999));
  let report = ok (Engine.verify_object engine (Engine.root_oid engine)) in
  Format.printf "after silent edit: %a@." Verifier.pp_report report;
  if Verifier.ok report then failwith "BUG: tampering went undetected";
  print_endline "quickstart done."
