(* A curated-database workflow (the setting of Buneman et al. that the
   paper cites): a gene-annotation table maintained across multiple
   curation sessions by different curators, with a standing auditor
   and a downstream consumer.

   Demonstrates: session persistence (Engine.of_parts), incremental
   auditing, provenance queries, and bundle delivery.

     dune exec examples/curated_db.exe *)

open Tep_store
open Tep_tree
open Tep_core

let ok = function Ok v -> v | Error e -> failwith e

(* simulate "sessions" by serialising everything and reloading *)
let persist eng =
  let snap = Snapshot.to_string (Engine.backend eng) in
  let prov = Provstore.to_string (Engine.provstore eng) in
  let fbuf = Buffer.create 1024 in
  Forest.encode fbuf (Engine.forest eng);
  let vbuf = Buffer.create 1024 in
  Tree_view.encode vbuf (Engine.mapping eng);
  (snap, prov, Buffer.contents fbuf, Buffer.contents vbuf)

let resume dir (snap, prov, fs, vs) =
  let db = ok (Snapshot.of_string snap) in
  let prov = ok (Provstore.of_string prov) in
  let forest, _ = Forest.decode fs 0 in
  let view, _ = Tree_view.decode vs 0 in
  Engine.of_parts ~provstore:prov ~directory:dir ~forest ~view db

let () =
  let drbg = Tep_crypto.Drbg.create ~seed:"curated-db" in
  let ca = Tep_crypto.Pki.create_ca ~name:"Consortium CA" drbg in
  let dir = Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca) in
  let mk name =
    let p = Participant.create ~ca ~name drbg in
    Participant.Directory.register dir p;
    p
  in
  let maria = mk "curator-maria" in
  let wei = mk "curator-wei" in
  let pipeline = mk "annotation-pipeline" in

  (* --- session 1: Maria seeds the table --- *)
  let db = Database.create ~name:"genedb" in
  let schema =
    Schema.make
      [
        { Schema.name = "gene"; ty = Value.TText; nullable = false };
        { Schema.name = "function"; ty = Value.TText; nullable = false };
        { Schema.name = "confidence"; ty = Value.TInt; nullable = false };
      ]
  in
  ignore (ok (Database.create_table db ~name:"annotations" schema));
  let eng = Engine.create ~directory:dir db in
  let genes = [ "BRCA1"; "TP53"; "EGFR"; "MYC" ] in
  let rows =
    List.map
      (fun g ->
        ok
          (Engine.insert_row eng maria ~table:"annotations"
             [| Value.Text g; Value.Text "unknown"; Value.Int 0 |]))
      genes
  in
  Printf.printf "session 1 (maria): seeded %d genes, %d provenance records\n"
    (List.length rows)
    (Provstore.record_count (Engine.provstore eng));
  (* the auditor takes a checkpoint at end of session *)
  let audit_report, ckpt =
    Audit.full_audit ~algo:(Engine.algo eng) ~directory:dir (Engine.provstore eng)
  in
  assert (Verifier.ok audit_report);
  let ckpt_bytes = Audit.to_string ckpt in
  let state1 = persist eng in

  (* --- session 2: the pipeline proposes functions, Wei curates --- *)
  let eng = resume dir state1 in
  ignore
    (ok
       (Engine.complex_op eng pipeline (fun () ->
            List.fold_left
              (fun acc row ->
                match acc with
                | Error _ -> acc
                | Ok () ->
                    Engine.update_cell_named eng pipeline ~table:"annotations"
                      ~row ~column:"function"
                      (Value.Text "predicted: kinase activity"))
              (Ok ()) rows)));
  (* Wei reviews BRCA1 by hand and raises confidence *)
  let brca1 = List.nth rows 0 in
  ok
    (Engine.update_cell_named eng wei ~table:"annotations" ~row:brca1
       ~column:"function" (Value.Text "DNA repair"));
  ok
    (Engine.update_cell_named eng wei ~table:"annotations" ~row:brca1
       ~column:"confidence" (Value.Int 3));
  Printf.printf "session 2 (pipeline + wei): %d records total\n"
    (Provstore.record_count (Engine.provstore eng));

  (* --- the auditor wakes up: incremental audit --- *)
  let ckpt = ok (Audit.of_string ckpt_bytes) in
  let report, ckpt, examined =
    Audit.incremental_audit ~algo:(Engine.algo eng) ~directory:dir ckpt
      (Engine.provstore eng)
  in
  Printf.printf "auditor: %s — examined %d new records (of %d total)\n"
    (if Verifier.ok report then "clean" else "TAMPERING")
    examined
    (Provstore.record_count (Engine.provstore eng));
  assert (Verifier.ok report);
  ignore ckpt;

  (* --- provenance queries on the curated cell --- *)
  let fcell =
    Option.get (Tree_view.cell_oid (Engine.mapping eng) "annotations" brca1 1)
  in
  print_endline "\nBRCA1.function timeline:";
  List.iter
    (fun (seq, who, v) ->
      Printf.printf "  v%d  %-20s %s\n" seq who (Value.to_string v))
    (Prov_query.value_history (Engine.provstore eng) fcell);
  Printf.printf "last writer: %s\n"
    (Option.value ~default:"?" (Prov_query.last_writer (Engine.provstore eng) fcell));

  (* --- deliver the curated row to a consumer as a bundle --- *)
  let row_oid =
    Option.get (Tree_view.row_oid (Engine.mapping eng) "annotations" brca1)
  in
  let bundle = ok (Bundle.create eng row_oid) in
  let bytes = Bundle.to_string bundle in
  Printf.printf "\nbundle for BRCA1 row: %d bytes, %d records, signed by: %s\n"
    (String.length bytes)
    (List.length bundle.Bundle.records)
    (String.concat ", " (Bundle.participants bundle));
  let received = ok (Bundle.of_string bytes) in
  let report = Bundle.verify ~trusted_ca:(Tep_crypto.Pki.ca_public_key ca) received in
  Format.printf "consumer verification: %a@." Verifier.pp_report report;
  assert (Verifier.ok report);

  (* the consumer can see that the pipeline's prediction was
     overridden by a human curator — the point of curated provenance *)
  let dag = Dag.build received.Bundle.records in
  let human_records = Dag.records_of_participant dag "curator-wei" in
  Printf.printf "human curation visible in delivered provenance: %d record(s)\n"
    (List.length human_records);
  assert (human_records <> []);
  print_endline "curated_db done."
