(* Tamper-evident provenance over tree-structured XML — the second
   data model the paper's Section 4.1 abstraction covers.

   A protein-annotation document is ingested, curated by different
   participants, delivered, and tampered with.

     dune exec examples/xml_provenance.exe *)

open Tep_store
open Tep_tree
open Tep_core

let ok = function Ok v -> v | Error e -> failwith e

let document =
  {|<entry accession="P04637" dataset="curated">
  <protein>
    <name>Cellular tumor antigen p53</name>
    <gene>TP53</gene>
  </protein>
  <organism taxid="9606">Homo sapiens</organism>
  <comment type="function">Acts as a tumor suppressor</comment>
</entry>|}

(* ingest an XML node through the engine so every element, attribute
   and text node gets its own provenance *)
let rec ingest eng p ?parent node =
  match node with
  | Xml.Text t -> Engine.insert_object eng p ?parent (Xml.text_value t)
  | Xml.Element (name, attrs, children) -> (
      match Engine.insert_object eng p ?parent (Xml.element_value name) with
      | Error e -> Error e
      | Ok oid ->
          let rec go = function
            | [] -> Ok oid
            | `A (k, v) :: rest -> (
                match
                  Engine.insert_object eng p ~parent:oid (Xml.attribute_value k v)
                with
                | Ok _ -> go rest
                | Error e -> Error e)
            | `C c :: rest -> (
                match ingest eng p ~parent:oid c with
                | Ok _ -> go rest
                | Error e -> Error e)
          in
          go
            (List.map (fun (k, v) -> `A (k, v)) attrs
            @ List.map (fun c -> `C c) children))

let find_text eng root needle =
  let f = Engine.forest eng in
  let found = ref None in
  Forest.iter_preorder f root (fun o v ->
      if !found = None && Value.equal v (Xml.text_value needle) then found := Some o);
  Option.get !found

let () =
  let drbg = Tep_crypto.Drbg.create ~seed:"xml-example" in
  let ca = Tep_crypto.Pki.create_ca ~name:"UniProt CA" drbg in
  let dir = Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca) in
  let mk name =
    let p = Participant.create ~ca ~name drbg in
    Participant.Directory.register dir p;
    p
  in
  let importer = mk "importer" and curator = mk "curator" in
  let eng = Engine.create ~directory:dir (Database.create ~name:"xmldb") in

  let doc = ok (Xml.parse document) in
  let root, _ =
    ok (Engine.complex_op eng importer (fun () -> ingest eng importer doc))
  in
  Printf.printf "ingested document: %d nodes, %d provenance records\n"
    (Tep_tree.Subtree.size (ok (Forest.subtree (Engine.forest eng) root)))
    (Provstore.record_count (Engine.provstore eng));

  (* curation: fix the function annotation *)
  let fn = find_text eng root "Acts as a tumor suppressor" in
  ok
    (Engine.update_object eng curator fn
       (Xml.text_value
          "Acts as a tumor suppressor in many tumor types; induces growth \
           arrest or apoptosis"));
  Printf.printf "curator amended the function comment\n";

  (* deliver + verify, print reconstructed document *)
  let report = ok (Engine.verify_object eng root) in
  Format.printf "verification: %a@." Verifier.pp_report report;
  assert (Verifier.ok report);
  print_endline "\nreconstructed document:";
  print_string (Xml.to_string ~indent:true (ok (Xml.of_forest (Engine.forest eng) root)));

  (* blame at element granularity *)
  let prov = Engine.provstore eng in
  Printf.printf "\nlast writer of the comment text: %s\n"
    (Option.value ~default:"?" (Prov_query.last_writer prov fn));
  Printf.printf "contributors to the whole entry: %s\n"
    (String.concat ", "
       (List.map
          (fun (p, n) -> Printf.sprintf "%s (%d)" p n)
          (Prov_query.contributors prov root)));

  (* tamper: silently change the organism text behind the engine *)
  let org = find_text eng root "Homo sapiens" in
  ignore (Forest.update (Engine.forest eng) org (Xml.text_value "Mus musculus"));
  let report = ok (Engine.verify_object eng root) in
  Format.printf "\nafter silent organism swap: %a@." Verifier.pp_report report;
  assert (not (Verifier.ok report));
  print_endline "xml_provenance done."
