(* The paper's Example 1: TrustUsRx submits a clinical trial result to
   the FDA with tamper-evident provenance.

     dune exec examples/clinical_trial.exe *)

open Tep_core
open Tep_workload

let ok = function Ok v -> v | Error e -> failwith e

let () =
  let env = Scenario.make_env ~seed:"fda-submission" () in
  let c = Scenario.clinical_trial ~patients:8 env in
  let engine = c.Scenario.engine in

  print_endline "=== TrustUsRx clinical trial submission ===";
  Printf.printf "participants: %s\n"
    (String.concat ", " (List.map fst c.Scenario.participants));
  Printf.printf "total provenance records: %d\n"
    (Provstore.record_count (Engine.provstore engine));

  (* The FDA receives the aggregated trial result with provenance. *)
  let data, records = ok (Engine.deliver engine c.Scenario.trial_result) in
  Printf.printf "\ndelivered: trial_result (%d tree nodes), %d-record provenance object\n"
    (Tep_tree.Subtree.size data) (List.length records);

  (* Who touched the data, and in what roles? *)
  let dag = Dag.build records in
  print_endline "\ncontributions:";
  List.iter
    (fun (name, _) ->
      let rs = Dag.records_of_participant dag name in
      if rs <> [] then
        Printf.printf "  %-22s %d records (%s)\n" name (List.length rs)
          (String.concat "," (List.sort_uniq compare
             (List.map (fun r -> Record.kind_name r.Record.kind) rs))))
    c.Scenario.participants;

  (* Pamela's amendment is visible in the provenance. *)
  let amended = List.hd c.Scenario.patients_amended in
  Printf.printf "\nPCP Pamela amended Endocrine for patient row %d\n" amended;

  (* FDA verification. *)
  let report =
    Verifier.verify ~algo:(Engine.algo engine)
      ~directory:env.Scenario.directory ~data records
  in
  Format.printf "\nFDA verification: %a@." Verifier.pp_report report;
  assert (Verifier.ok report);

  (* Now TrustUsRx tries to hide Pamela's amendment by dropping her
     record from the provenance object it ships... *)
  let launder =
    List.filter (fun r -> r.Record.participant <> "PCP Pamela") records
  in
  let report2 =
    Verifier.verify ~algo:(Engine.algo engine)
      ~directory:env.Scenario.directory ~data launder
  in
  Format.printf "\nafter hiding Pamela's amendment: %a@." Verifier.pp_report
    report2;
  assert (not (Verifier.ok report2));

  (* ...or to quietly change a patient's age in the delivered data. *)
  let fudged = Tamper.tamper_data_value data in
  let report3 =
    Verifier.verify ~algo:(Engine.algo engine)
      ~directory:env.Scenario.directory ~data:fudged records
  in
  Format.printf "\nafter fudging delivered data: %a@." Verifier.pp_report
    report3;
  assert (not (Verifier.ok report3));
  print_endline "\nclinical_trial done."
