(* The Section-5.2 scale-out experiment: hash a database too large to
   treat as an in-memory tree, one row at a time, in bounded memory —
   and confirm the result is bit-identical to the tree hash.

     dune exec examples/streaming_hash.exe [rows]   (default 200_000) *)

open Tep_store
open Tep_tree
open Tep_workload

let () =
  let rows =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 200_000
  in
  Printf.printf "building Title table with %d rows...\n%!" rows;
  let db = Synth.build_title_database ~rows in
  let algo = Tep_crypto.Digest_algo.SHA1 in

  let t0 = Unix.gettimeofday () in
  let h, nodes = Streaming.hash_database_with_counts algo db in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "streaming hash: %s\n" (Tep_crypto.Digest_algo.to_hex h);
  Printf.printf "%d nodes in %.2fs = %.5f ms/node (paper: 0.02156 ms/node on
 2009 hardware, 18.9M rows)\n" nodes dt (dt *. 1000. /. float_of_int nodes);

  (* cross-check against the materialised tree on a small prefix *)
  let small = Synth.build_title_database ~rows:500 in
  let f = Forest.create () in
  let m = Tree_view.build f small in
  let tree_hash =
    match Forest.subtree f (Tree_view.root m) with
    | Ok s -> Merkle.hash_subtree algo s
    | Error e -> failwith e
  in
  let stream_hash = Streaming.hash_database algo small in
  assert (String.equal tree_hash stream_hash);
  print_endline "cross-check vs materialised tree (500 rows): identical";

  (* the row-pull interface: hash rows arriving from a cursor *)
  let tbl = Database.get_table_exn db "Title" in
  let remaining = ref (Table.rows tbl) in
  let pull () =
    match !remaining with
    | [] -> None
    | r :: rest ->
        remaining := rest;
        Some (r.Table.id, r.Table.cells)
  in
  let h2, _ =
    Streaming.hash_rows algo ~schema_arity:2 ~table_oid:1 ~table_name:"Title"
      ~row_count:(Table.row_count tbl) pull
  in
  Printf.printf "cursor-fed table hash: %s...\n"
    (String.sub (Tep_crypto.Digest_algo.to_hex h2) 0 16);
  print_endline "streaming_hash done."
