(* Reproduces Figures 2 and 3: the worked non-linear provenance
   example with integrity checksums, printed as the paper's table,
   plus a Graphviz rendering of the DAG.

     dune exec examples/nonlinear_dag.exe *)

open Tep_core
open Tep_workload

let ok = function Ok v -> v | Error e -> failwith e

let () =
  let env = Scenario.make_env ~seed:"figure2" () in
  let f = Scenario.figure2 env in
  let store = f.Scenario.store in

  (* Deliver D: its provenance object is the 7-record DAG. *)
  let data, records = ok (Atomic.deliver store f.Scenario.d) in

  print_endline "=== Figure 3: provenance records with checksums ===";
  Printf.printf "%-6s %-12s %-22s %-12s %s\n" "seqID" "participant" "input"
    "output" "checksum";
  let name_of oid =
    match
      List.assoc_opt (Tep_tree.Oid.to_int oid)
        [
          (Tep_tree.Oid.to_int f.Scenario.a, "A");
          (Tep_tree.Oid.to_int f.Scenario.b, "B");
          (Tep_tree.Oid.to_int f.Scenario.c, "C");
          (Tep_tree.Oid.to_int f.Scenario.d, "D");
        ]
    with
    | Some n -> n
    | None -> Tep_tree.Oid.to_string oid
  in
  List.iter
    (fun (r : Record.t) ->
      let inputs =
        match r.Record.input_oids with
        | [] -> "{}"
        | oids -> "{" ^ String.concat "," (List.map name_of oids) ^ "}"
      in
      let output =
        Printf.sprintf "(%s,%s)" (name_of r.Record.output_oid)
          (match r.Record.output_value with
          | Some v -> Tep_store.Value.to_string v
          | None -> "?")
      in
      Printf.printf "%-6d %-12s %-22s %-12s %s...\n" r.Record.seq_id
        r.Record.participant inputs output (Record.checksum_hex r))
    records;

  (* DAG structure *)
  let dag = Dag.build records in
  Printf.printf "\nDAG: %d records, depth %d, linear: %b, roots (inserts): %d\n"
    (Dag.size dag) (Dag.depth dag) (Dag.is_linear dag)
    (List.length (Dag.roots dag));

  print_endline "\n=== Graphviz (pipe into dot -Tpng) ===";
  print_string (Dag.to_dot dag);

  (* Recipient verification of D, per Section 3's procedure. *)
  let report =
    Verifier.verify ~algo:(Atomic.algo store)
      ~directory:env.Scenario.directory ~data records
  in
  Format.printf "@.verification of D: %a@." Verifier.pp_report report;
  assert (Verifier.ok report);

  (* The multiversion subtlety: C was built from the ORIGINAL a1, not
     the current a3 — visible in the provenance. *)
  let c6 =
    List.find (fun r -> Tep_tree.Oid.equal r.Record.output_oid f.Scenario.c) records
  in
  let a_insert =
    List.find
      (fun (r : Record.t) ->
        Tep_tree.Oid.equal r.Record.output_oid f.Scenario.a && r.Record.seq_id = 0)
      records
  in
  assert (List.nth c6.Record.input_hashes 0 = a_insert.Record.output_hash);
  print_endline "confirmed: C6 cites h(A,a1) — the original version of A";
  print_endline "nonlinear_dag done."
